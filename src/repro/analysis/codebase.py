"""Codebase-level static analysis: shared AST loading plus the LR rules.

This module is the home of the *codebase gate* that used to live in
``tools/lint_repro.py`` (the tool remains as a thin CLI shim so CI
invocations are unchanged).  It has two layers:

* a shared whole-program loader — :func:`load_tree` parses every module
  under a package root once into :class:`SourceFile` values (AST, module
  name, comment map), which both the LR lint pass below and the
  concurrency pass (:mod:`repro.analysis.concurrency`) walk, so the
  repository is parsed exactly once per analysis run;
* the LR rule family, project-specific discipline checks:

  * **LR001** — no bare ``except:`` clauses: always name the exceptions a
    handler is prepared for.
  * **LR002** — ``Tracer()`` may only be constructed at the pipeline
    entry points (engine, CLI, observability, experiments, benchmarks,
    tests); everything else must accept a tracer parameter so spans nest
    into one trace instead of being silently dropped.
  * **LR003** — no string-literal subscripts on row variables outside
    ``repro.relational``: row layout is that package's private concern,
    other layers go through schemas and executors.
  * **LR004** — module-level import layering: lower layers must not
    import upper layers (``repro.sql`` must not know about patterns or
    engines, ``repro.fd`` only depends on itself and errors, and so on).
    Lazy imports inside functions are exempt — they are how intentional
    back-references (executor -> analysis) avoid cycles.
  * **LR005** — every ``threading.Thread(...)`` construction must pass
    both ``name=`` and ``daemon=``: anonymous threads make deadlock
    dumps unreadable, and forgotten non-daemon threads hang interpreter
    shutdown.  ``repro/service/`` is exempt — it is the one layer whose
    whole job is thread lifecycle, and it names everything anyway.
  * **LR006** — ``sqlite3`` may only be imported (at any nesting level)
    inside ``repro/backends/``: every other layer goes through the
    :class:`~repro.backends.base.Backend` protocol, so the RDBMS
    dependency stays swappable.
  * **LR007** — ``multiprocessing`` (and ``os.fork``) may only be used
    (at any nesting level) inside ``repro/service/pool.py``: process
    lifecycle is the worker pool's whole job, so fork-safety reasoning
    stays in one reviewable place.
  * **LR008** — raw file-I/O primitives — binary-mode ``open``,
    ``mmap``, and the ``os.pread``/``os.pwrite`` family — may only be
    used inside ``repro/storage/``: page layout, torn-write handling and
    buffer-pool accounting live in the storage engine, and everything
    else reads bytes through it (or sticks to text-mode files).
  * **LR009** — the cost model and statistics sampling stay inside
    ``repro/planner/``: ``random`` may only be imported there (and in
    ``repro/datasets/``, whose synthetic generators legitimately draw
    values), and ``*_COST_PARAMS`` constants may only be *defined* in
    the planner package — other layers import
    :func:`repro.planner.params_for_backend` instead of forking their
    own coefficients, so calibration happens in exactly one place.

Findings are plain ``(path, lineno, code, message)`` tuples for the CLI
shim, and :func:`as_diagnostics` lifts them into the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model.
"""

from __future__ import annotations

import argparse
import ast
import io
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "Finding",
    "SourceFile",
    "as_diagnostics",
    "default_root",
    "lint_file",
    "lint_tree",
    "load_source_file",
    "load_tree",
    "main",
    "module_name",
]

#: One lint finding: file, line, rule code, human message.
Finding = Tuple[Path, int, str, str]


# ----------------------------------------------------------------------
# Shared source loading (one parse per file, reused by every pass)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceFile:
    """One parsed module: everything an AST pass needs, parsed once."""

    path: Path
    posix: str  # POSIX-style path string, for allowlist substring matches
    module: str  # dotted module name relative to the package root
    text: str
    tree: ast.Module
    comments: Dict[int, str]  # lineno -> comment text (without the '#')

    def comment_on(self, lineno: int) -> str:
        """The comment on *lineno*, or the one on the line above it."""
        return self.comments.get(lineno) or self.comments.get(lineno - 1, "")


def default_root() -> Path:
    """The package directory analyses default to: ``src/repro``."""
    return Path(__file__).resolve().parent.parent


def module_name(root: Path, path: Path) -> str:
    relative = path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _comment_map(text: str) -> Dict[int, str]:
    """lineno -> comment text for every ``#`` comment in *text*."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        pass
    return comments


def load_source_file(root: Path, path: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    return SourceFile(
        path=path,
        posix=path.as_posix(),
        module=module_name(root, path),
        text=text,
        tree=ast.parse(text, filename=str(path)),
        comments=_comment_map(text),
    )


def load_tree(root: Optional[Path] = None) -> List[SourceFile]:
    """Parse every ``*.py`` under *root* (default: the repro package)."""
    base = root if root is not None else default_root()
    return [load_source_file(base, path) for path in sorted(base.rglob("*.py"))]


def as_diagnostics(findings: List[Finding]) -> List[Diagnostic]:
    """Lift lint tuples into the shared :class:`Diagnostic` model."""
    return [
        Diagnostic(
            code=code,
            severity=Severity.ERROR,
            message=message,
            location=f"{path}:{lineno}",
        )
        for path, lineno, code, message in findings
    ]


# ----------------------------------------------------------------------
# LR rule configuration
# ----------------------------------------------------------------------
# file path substrings (POSIX style) where Tracer() construction is fine
TRACER_ALLOWED = (
    "repro/cli.py",
    "repro/engine.py",
    "repro/observability/",
    "repro/experiments/",
    "repro/analysis/check.py",
    # the differential harness is a pipeline entry point (`repro diff`)
    "repro/backends/differential.py",
    # the service is a pipeline entry point: one tracer per request
    "repro/service/",
)

# file path substrings where importing sqlite3 is allowed (LR006): the
# backend package owns the one RDBMS dependency
SQLITE_ALLOWED = ("repro/backends/",)

# file path substrings where importing multiprocessing / calling os.fork
# is allowed (LR007): the worker pool owns process lifecycle
MULTIPROCESSING_ALLOWED = ("repro/service/pool.py",)

# file path substrings where raw file I/O (binary open, mmap, os.pread /
# os.pwrite family) is allowed (LR008): the paged storage engine owns
# byte-level file access
STORAGE_IO_ALLOWED = ("repro/storage/",)

# os.* positioned-I/O functions confined by LR008
_STORAGE_IO_OS_FUNCS = ("pread", "pwrite", "preadv", "pwritev")

# file path substrings where importing random is allowed (LR009): the
# planner samples for statistics, the dataset generators draw values
RANDOM_ALLOWED = ("repro/planner/", "repro/datasets/")

# module-level constant-name suffix the cost model owns (LR009)
_COST_CONSTANT_SUFFIX = "_COST_PARAMS"

# variable names treated as raw rows for LR003
ROW_NAMES = ("row", "rows", "tuple_row", "record")

# file path substrings where LR005 (named, explicit-daemon threads) is
# not enforced: the serving layer owns thread lifecycle
THREAD_RULE_EXEMPT = ("repro/service/",)

# (file substring, forbidden prefix) pairs exempt from LR004: justified
# cross-layer dependencies, each with a reason
LAYERING_EXEMPT = (
    # FD discovery profiles table *data*; the fd core stays relational-free
    ("repro/fd/discovery.py", "repro.relational"),
)

# package -> module prefixes it must NOT import at module level
LAYERING: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "repro.sql",
        (
            "repro.patterns",
            "repro.engine",
            "repro.unnormalized",
            "repro.keywords",
            "repro.orm",
            "repro.analysis",
            "repro.planner",
        ),
    ),
    (
        "repro.fd",
        (
            "repro.sql",
            "repro.patterns",
            "repro.engine",
            "repro.relational",
            "repro.unnormalized",
            "repro.keywords",
            "repro.orm",
            "repro.analysis",
            "repro.observability",
            "repro.planner",
        ),
    ),
    (
        "repro.observability",
        (
            "repro.sql",
            "repro.patterns",
            "repro.engine",
            "repro.relational",
            "repro.unnormalized",
            "repro.keywords",
            "repro.orm",
            "repro.fd",
            "repro.analysis",
            "repro.planner",
        ),
    ),
    (
        "repro.relational",
        (
            "repro.patterns",
            "repro.engine",
            "repro.keywords",
            "repro.unnormalized",
            "repro.analysis",
            # the executor consumes the planner lazily (plan-time import
            # inside a property); module level stays one-directional
            "repro.planner",
        ),
    ),
    (
        "repro.planner",
        (
            "repro.patterns",
            "repro.engine",
            "repro.keywords",
            "repro.orm",
            "repro.unnormalized",
            "repro.analysis",
            "repro.backends",
            "repro.service",
            "repro.experiments",
            "repro.baselines",
        ),
    ),
    (
        "repro.analysis",
        ("repro.engine", "repro.experiments", "repro.baselines"),
    ),
)


# ----------------------------------------------------------------------
# LR rule implementation (one walk per file)
# ----------------------------------------------------------------------
def _is_thread_constructor(func: ast.expr) -> bool:
    """True for ``Thread(...)`` and ``threading.Thread(...)`` calls."""
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "Thread"
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    )


def iter_module_level_imports(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """(line, imported module) for imports outside any function body."""

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: List[Tuple[int, str]] = []
            self.depth = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Import(self, node: ast.Import) -> None:
            if self.depth == 0:
                for alias in node.names:
                    self.found.append((node.lineno, alias.name))

        def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
            if self.depth == 0 and node.module:
                self.found.append((node.lineno, node.module))

    visitor = Visitor()
    visitor.visit(tree)
    return iter(visitor.found)


def _imported_names(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        return [node.module or ""]
    return []


def _confined_import(
    source: SourceFile,
    node: ast.AST,
    target: str,
    allowed: Tuple[str, ...],
    code: str,
    message: str,
    findings: List[Finding],
) -> None:
    """Flag imports of *target* outside the *allowed* path substrings."""
    if any(part in source.posix for part in allowed):
        return
    if not isinstance(node, (ast.Import, ast.ImportFrom)):
        return
    for imported in _imported_names(node):
        if imported == target or imported.startswith(target + "."):
            findings.append((source.path, node.lineno, code, message))


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open(...)`` call, if written as
    one (second positional argument or ``mode=`` keyword)."""
    mode: Optional[str] = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        value = node.args[1].value
        mode = value if isinstance(value, str) else None
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            mode = value if isinstance(value, str) else None
    return mode


def analyze_source(source: SourceFile) -> List[Finding]:
    """Run every LR rule over one parsed module (a single AST walk)."""
    findings: List[Finding] = []
    posix = source.posix

    for node in ast.walk(source.tree):
        _confined_import(
            source,
            node,
            "sqlite3",
            SQLITE_ALLOWED,
            "LR006",
            "sqlite3 imported outside repro/backends/; go through the "
            "Backend protocol instead",
            findings,
        )
        _confined_import(
            source,
            node,
            "multiprocessing",
            MULTIPROCESSING_ALLOWED,
            "LR007",
            "multiprocessing imported outside repro/service/pool.py; go "
            "through WorkerPool instead",
            findings,
        )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fork"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
            and not any(part in posix for part in MULTIPROCESSING_ALLOWED)
        ):
            findings.append(
                (
                    source.path,
                    node.lineno,
                    "LR007",
                    "os.fork() called outside repro/service/pool.py; go "
                    "through WorkerPool instead",
                )
            )
        _confined_import(
            source,
            node,
            "mmap",
            STORAGE_IO_ALLOWED,
            "LR008",
            "mmap imported outside repro/storage/; byte-level file "
            "access belongs to the storage engine",
            findings,
        )
        _confined_import(
            source,
            node,
            "random",
            RANDOM_ALLOWED,
            "LR009",
            "random imported outside repro/planner/ and repro/datasets/; "
            "statistics sampling belongs to the planner",
            findings,
        )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and not any(part in posix for part in STORAGE_IO_ALLOWED)
        ):
            mode = _open_mode(node)
            if isinstance(mode, str) and "b" in mode:
                findings.append(
                    (
                        source.path,
                        node.lineno,
                        "LR008",
                        f"binary-mode open({mode!r}) outside "
                        f"repro/storage/; byte-level file access belongs "
                        f"to the storage engine",
                    )
                )
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _STORAGE_IO_OS_FUNCS
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and not any(part in posix for part in STORAGE_IO_ALLOWED)
        ):
            findings.append(
                (
                    source.path,
                    node.lineno,
                    "LR008",
                    f"os.{node.attr} used outside repro/storage/; "
                    f"byte-level file access belongs to the storage "
                    f"engine",
                )
            )
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                (source.path, node.lineno, "LR001", "bare 'except:' clause")
            )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Tracer"
            and not any(part in posix for part in TRACER_ALLOWED)
        ):
            findings.append(
                (
                    source.path,
                    node.lineno,
                    "LR002",
                    "Tracer() constructed outside a pipeline entry point; "
                    "accept a tracer parameter instead",
                )
            )
        if (
            isinstance(node, ast.Call)
            and _is_thread_constructor(node.func)
            and not any(part in posix for part in THREAD_RULE_EXEMPT)
        ):
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            missing = sorted({"name", "daemon"} - kwargs)
            if missing:
                findings.append(
                    (
                        source.path,
                        node.lineno,
                        "LR005",
                        "threading.Thread(...) without explicit "
                        + " and ".join(f"{kw}=" for kw in missing)
                        + "; name threads and decide their daemon-ness",
                    )
                )
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in ROW_NAMES
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and "repro/relational/" not in posix
        ):
            findings.append(
                (
                    source.path,
                    node.lineno,
                    "LR003",
                    f"string subscript on row variable "
                    f"{node.value.id}[{node.slice.value!r}] outside "
                    f"repro.relational",
                )
            )

    if "repro/planner/" not in posix:
        # LR009 (cost half): *_COST_PARAMS definitions outside the
        # planner fork the cost model — import params_for_backend instead
        for statement in source.tree.body:
            if isinstance(statement, ast.Assign):
                names = [t for t in statement.targets if isinstance(t, ast.Name)]
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                names = [statement.target]
            else:
                continue
            for name in names:
                if name.id.endswith(_COST_CONSTANT_SUFFIX):
                    findings.append(
                        (
                            source.path,
                            statement.lineno,
                            "LR009",
                            f"cost-model constant {name.id} defined outside "
                            f"repro/planner/; import "
                            f"repro.planner.params_for_backend instead",
                        )
                    )

    for package, forbidden in LAYERING:
        module = source.module
        if not (module == package or module.startswith(package + ".")):
            continue
        for lineno, imported in iter_module_level_imports(source.tree):
            for prefix in forbidden:
                if imported == prefix or imported.startswith(prefix + "."):
                    if any(
                        part in posix
                        and (
                            imported == exempt
                            or imported.startswith(exempt + ".")
                        )
                        for part, exempt in LAYERING_EXEMPT
                    ):
                        continue
                    findings.append(
                        (
                            source.path,
                            lineno,
                            "LR004",
                            f"{package} must not import {imported} at "
                            f"module level",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# Public lint entry points (used by the tools/lint_repro.py shim)
# ----------------------------------------------------------------------
def lint_file(root: Path, path: Path) -> List[Finding]:
    return analyze_source(load_source_file(root, path))


def lint_tree(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for source in load_tree(root):
        findings.extend(analyze_source(source))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Project-specific AST lint for the repro codebase"
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=default_root(),
        help="package directory to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    findings = lint_tree(args.root)
    for path, lineno, code, message in findings:
        print(f"{path}:{lineno}: {code} {message}")
    if not findings:
        print(f"lint_repro: clean ({args.root})")
    return min(len(findings), 1)


if __name__ == "__main__":  # pragma: no cover - module CLI convenience
    sys.exit(main())
