"""Schema-aware type inference over the SQL AST.

Maps every expression of a :class:`~repro.sql.ast.Select` to a
:class:`~repro.relational.types.DataType` (or ``None`` when the type cannot
be determined, e.g. ``COUNT(*)``'s argument or a NULL literal).  Inference
is deliberately partial: analyzers only flag what they can *prove* wrong,
so an unknown type silences downstream checks rather than guessing.

Derived tables are typed recursively: a subquery's output column takes the
inferred type of the select item that produces it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TypeMismatchError
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType, common_type, infer_type
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    Select,
    TableRef,
)

# alias -> {lower-case column name -> declared/inferred type or None}
TypeScope = Dict[str, Dict[str, Optional[DataType]]]

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
LOGICAL_OPS = ("AND", "OR")
ARITHMETIC_OPS = ("+", "-", "*", "/")


def build_scope(select: Select, schema: DatabaseSchema) -> TypeScope:
    """The types visible through each FROM alias of *select*."""
    scope: TypeScope = {}
    for item in select.from_items:
        if isinstance(item, TableRef):
            if item.table not in schema:
                scope[item.alias] = {}
                continue
            relation = schema.relation(item.table)
            scope[item.alias] = {
                column.name.lower(): column.dtype for column in relation.columns
            }
        elif isinstance(item, DerivedTable):
            inner_scope = build_scope(item.select, schema)
            exposed: Dict[str, Optional[DataType]] = {}
            for index, sub in enumerate(item.select.items):
                name = sub.output_name(default=f"col{index + 1}").lower()
                exposed[name] = infer_expr_type(sub.expr, inner_scope)
            scope[item.alias] = exposed
    return scope


def infer_expr_type(expr: Expr, scope: TypeScope) -> Optional[DataType]:
    """Best-effort type of *expr* under *scope*; ``None`` when unknown."""
    if isinstance(expr, ColumnRef):
        name = expr.name.lower()
        if expr.qualifier is not None:
            return scope.get(expr.qualifier, {}).get(name)
        owners = [
            columns[name] for columns in scope.values() if name in columns
        ]
        if len(owners) == 1:
            return owners[0]
        return None  # unresolved or ambiguous — resolution checks flag it
    if isinstance(expr, Literal):
        if expr.value is None:
            return None
        try:
            return infer_type(expr.value)
        except TypeMismatchError:
            return None
    if isinstance(expr, FuncCall):
        return _func_type(expr, scope)
    if isinstance(expr, BinaryOp):
        if expr.op in COMPARISON_OPS or expr.op in LOGICAL_OPS:
            return DataType.BOOL
        if expr.op in ARITHMETIC_OPS:
            left = infer_expr_type(expr.left, scope)
            right = infer_expr_type(expr.right, scope)
            if left is None or right is None:
                return None
            try:
                widened = common_type(left, right)
            except TypeMismatchError:
                return None
            if expr.op == "/":
                return DataType.FLOAT
            return widened
        return None
    if isinstance(expr, (Contains, IsNull)):
        return DataType.BOOL
    return None  # Star and anything future


def _func_type(call: FuncCall, scope: TypeScope) -> Optional[DataType]:
    name = call.name.upper()
    if name == "COUNT":
        return DataType.INT
    if name == "AVG":
        return DataType.FLOAT
    if name in ("SUM", "MIN", "MAX"):
        if not call.args:
            return None
        return infer_expr_type(call.args[0], scope)
    return None
