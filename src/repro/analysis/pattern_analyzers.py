"""Pattern analyzers: structural and ORA-consistency checks (§3.2–3.3).

Three entry points, all side-effect free:

* :func:`analyze_pattern` — one annotated query pattern against the ORM
  schema graph: connectivity (P002), minimality (P003), node/edge
  consistency with the graph (P004/P006), annotation-attribute ownership
  (P005) and aggregate-function legality (P008);
* :func:`analyze_interpretation_set` — the *set* of ranked patterns for a
  query: when a condition value is shared by several objects
  (``distinct_objects > 1``), some variant must distinguish them with a
  ``GROUPBY(identifier)`` annotation (P007, the paper's pattern
  disambiguation);
* :func:`analyze_translation` — the pattern against its translated SQL: a
  relationship node connected to fewer participants than its ORM node has
  must be read through a duplicate-eliminating projection (P009,
  Example 6 — the step SQAK misses).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.orm.classify import RelationType
from repro.orm.graph import OrmSchemaGraph
from repro.patterns.pattern import PatternNode, QueryPattern
from repro.patterns.translator import PatternTranslator
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    DerivedTable,
    FromItem,
    Select,
    TableRef,
)


def analyze_pattern(
    pattern: QueryPattern, graph: OrmSchemaGraph, location: str = ""
) -> List[Diagnostic]:
    """Structural and ORA-annotation diagnostics for one pattern."""
    diagnostics: List[Diagnostic] = []

    def report(
        code: str, message: str, hint: str = "", severity: Severity = Severity.ERROR
    ) -> None:
        diagnostics.append(Diagnostic(code, severity, message, location, hint))

    if not pattern.nodes:
        report("P001", "query pattern has no nodes")
        return diagnostics
    if not pattern.is_connected():
        report(
            "P002",
            "query pattern is not connected",
            hint="patterns must be connected subgraphs of the ORM schema "
            "graph (Definition 3)",
        )

    for node in pattern.nodes:
        where = f"node {node.id} ({node.orm_node})"
        orm_node = graph.nodes.get(node.orm_node)
        if orm_node is None:
            report("P004", f"{where}: unknown ORM node {node.orm_node!r}")
            continue
        owned = {relation.name for relation in orm_node.relations()}
        if node.relation not in owned:
            report(
                "P004",
                f"{where}: relation {node.relation!r} does not belong to "
                f"ORM node {node.orm_node!r}",
            )
        diagnostics.extend(_annotation_checks(node, owned, graph, where, location))
        # minimality: a leaf that carries nothing can be removed without
        # changing the query's meaning, so the pattern was not minimal
        if (
            len(pattern.nodes) > 1
            and len(pattern.neighbors(node.id)) <= 1
            and not node.conditions
            and not node.aggregates
            and not node.groupbys
            and not node.projections
        ):
            report(
                "P003",
                f"{where}: unannotated leaf node",
                hint="drop the node or annotate it; minimal patterns keep "
                "only nodes that contribute terms or connectivity",
            )

    for edge in pattern.edges:
        endpoint_nodes = {
            pattern.node(edge.first).orm_node,
            pattern.node(edge.second).orm_node,
        }
        edge_nodes = {edge.orm_edge.child_node, edge.orm_edge.parent_node}
        if endpoint_nodes != edge_nodes:
            report(
                "P006",
                f"edge {edge.first}--{edge.second}: ORM edge joins "
                f"{sorted(edge_nodes)}, not {sorted(endpoint_nodes)}",
            )
    return diagnostics


def _annotation_checks(
    node: PatternNode,
    owned: Set[str],
    graph: OrmSchemaGraph,
    where: str,
    location: str,
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def report(code: str, message: str, hint: str = "") -> None:
        diagnostics.append(
            Diagnostic(code, Severity.ERROR, message, location, hint)
        )

    def check_attribute(relation: str, attribute: str, label: str) -> None:
        if relation not in owned:
            report(
                "P005",
                f"{where}: {label} references relation {relation!r} outside "
                f"the node's ORM relations",
            )
            return
        if relation in graph.schema and not graph.schema.relation(
            relation
        ).has_column(attribute):
            report(
                "P005",
                f"{where}: {label} references unknown attribute "
                f"{relation}.{attribute}",
            )

    for condition in node.conditions:
        check_attribute(
            condition.relation,
            condition.attribute,
            f"condition ~'{condition.phrase}'",
        )
    for aggregate in node.aggregates:
        check_attribute(
            aggregate.relation, aggregate.attribute, f"aggregate {aggregate.func}"
        )
        bad = [
            func
            for func in (aggregate.func, *aggregate.outer_chain)
            if func.upper() not in AGGREGATE_FUNCTIONS
        ]
        if bad:
            report(
                "P008",
                f"{where}: invalid aggregate function(s) {bad}",
                hint=f"supported: {', '.join(AGGREGATE_FUNCTIONS)}",
            )
    for groupby in node.groupbys:
        for attribute in groupby.attributes:
            check_attribute(groupby.relation, attribute, "GROUPBY")
    for relation, attribute in node.projections:
        check_attribute(relation, attribute, "projection")
    return diagnostics


def analyze_interpretation_set(
    patterns: Sequence[QueryPattern], location: str = ""
) -> List[Diagnostic]:
    """P007: every multi-object condition needs a distinguishing variant.

    Takes the *full* ranked pattern set of one query (not the top-k
    truncation): the disambiguated variant may rank below its plain
    sibling without being wrong.
    """
    # (relation, attribute, phrase) -> some variant groups by the identifier
    distinguished: Dict[Tuple[str, str, str], bool] = {}
    for pattern in patterns:
        for node in pattern.nodes:
            for condition in node.conditions:
                if condition.distinct_objects <= 1:
                    continue
                key = (condition.relation, condition.attribute, condition.phrase)
                has_identifier = any(
                    groupby.from_disambiguation for groupby in node.groupbys
                )
                distinguished[key] = distinguished.get(key, False) or has_identifier
    diagnostics: List[Diagnostic] = []
    for (relation, attribute, phrase), ok in sorted(distinguished.items()):
        if ok:
            continue
        diagnostics.append(
            Diagnostic(
                "P007",
                Severity.WARNING,
                f"value {phrase!r} of {relation}.{attribute} matches several "
                "objects but no interpretation groups by the identifier",
                location,
                hint="enable pattern disambiguation so same-valued objects "
                "are distinguished (Section 3.3)",
            )
        )
    return diagnostics


def analyze_translation(
    pattern: QueryPattern,
    select: Select,
    graph: OrmSchemaGraph,
    enabled: bool = True,
    location: str = "",
) -> List[Diagnostic]:
    """P009: partial n-ary relationship use needs a DISTINCT projection.

    *select* must be the direct (pre-rewrite) translation of *pattern*, so
    node aliases line up.  Pass ``enabled=False`` when the engine runs with
    relationship dedup deliberately ablated.
    """
    if not enabled:
        return []
    diagnostics: List[Diagnostic] = []
    aliases = PatternTranslator._assign_aliases(pattern)
    from_items = _collect_from_items(select)
    for node in pattern.nodes:
        if node.type is not RelationType.RELATIONSHIP:
            continue
        if node.orm_node not in graph.nodes:
            continue  # P004 reports the broken node
        connected = len(pattern.adjacent_object_like(node.id))
        participants = len(graph.object_like_neighbors(node.orm_node))
        if connected >= participants:
            continue
        item = from_items.get(aliases[node.id])
        if item is None:
            continue
        if isinstance(item, DerivedTable) and item.select.distinct:
            continue
        diagnostics.append(
            Diagnostic(
                "P009",
                Severity.ERROR,
                f"relationship node {node.id} ({node.orm_node}) joins "
                f"{connected} of {participants} participants but alias "
                f"{aliases[node.id]} is not a DISTINCT projection",
                location,
                hint="project the foreign keys of the connected participants "
                "with SELECT DISTINCT (Example 6)",
            )
        )
    return diagnostics


def _collect_from_items(select: Select) -> Dict[str, FromItem]:
    """FROM items by alias, across nested-aggregate wrapper levels."""
    items: Dict[str, FromItem] = {}

    def visit(current: Select) -> None:
        for item in current.from_items:
            items.setdefault(item.alias, item)
            if isinstance(item, DerivedTable):
                visit(item.select)

    visit(select)
    return items
