"""``repro check`` — run every static analyzer over the evaluation workload.

For each selected dataset the checker compiles the paper's evaluation
queries (Tables 3 and 4) with **both** engines and analyzes every artifact
the pipeline produces:

* semantic engine — pattern, translation, SQL/type, rewrite and plan
  diagnostics via :meth:`KeywordSearchEngine.analyze`;
* SQAK baseline — SQL/type and plan diagnostics on each compiled statement
  (queries the baseline cannot express are skipped, as in the paper).

``repro check --concurrency`` instead turns the analyzers on the
codebase itself: the whole-program lock-discipline pass of
:mod:`repro.analysis.concurrency` (codes C001–C006), printing every
unsuppressed finding plus the justified suppressions it honoured.

The exit code is the number of artifacts with findings (capped at 1 for
shell use): a clean pipeline exits 0, so the command doubles as a CI gate.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.plan_analyzers import analyze_plan
from repro.analysis.sql_analyzers import analyze_select
from repro.errors import UnsupportedQueryError
from repro.observability import NULL_TRACER

CHECK_DATASETS = ("tpch", "tpch-unnorm", "acmdl", "acmdl-unnorm")


def _workload(dataset: str):
    # lazy: repro.analysis must stay importable without the upper layers
    from repro.experiments.queries import ACMDL_QUERIES, TPCH_QUERIES

    return TPCH_QUERIES if dataset.startswith("tpch") else ACMDL_QUERIES


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "statically analyze every artifact the pipeline produces for "
            "the evaluation workload; exit non-zero on findings"
        ),
    )
    parser.add_argument(
        "--dataset",
        action="append",
        choices=CHECK_DATASETS,
        dest="datasets",
        help="dataset to check (repeatable; default: all)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="interpretations to analyze per query (default: 10)",
    )
    parser.add_argument(
        "--skip-sqak",
        action="store_true",
        help="only check the semantic engine",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run the lock-discipline pass over the codebase instead of "
            "the workload analyzers"
        ),
    )
    return parser


def run_concurrency_check(out) -> int:
    """The ``--concurrency`` mode: static lock-discipline over the tree."""
    from repro.analysis.concurrency import analyze_concurrency

    report = analyze_concurrency()
    print(report.render(), file=out)
    for suppressed in report.suppressed:
        print(
            f"  suppressed {suppressed.diagnostic.code} "
            f"[{suppressed.diagnostic.location}]: "
            f"{suppressed.justification}",
            file=out,
        )
    return 1 if report.findings else 0


def run_check(argv: Optional[List[str]] = None, out=None) -> int:
    import sys

    from repro.baselines import SqakEngine
    from repro.cli import load_dataset
    from repro.engine import KeywordSearchEngine

    out = out or sys.stdout
    args = build_check_parser().parse_args(argv)
    if args.concurrency:
        return run_concurrency_check(out)
    datasets = args.datasets or list(CHECK_DATASETS)

    findings = 0
    artifacts = 0
    for dataset in datasets:
        database, fds, hints, extra_joins = load_dataset(dataset)
        queries = _workload(dataset)
        engine = KeywordSearchEngine(
            database, fds=fds or None, name_hints=hints or None
        )
        dataset_report = AnalysisReport()
        for spec in queries:
            report = engine.analyze(spec.text, k=args.top)
            artifacts += 1
            if report.has_findings:
                findings += 1
                print(f"{dataset} {spec.qid} [semantic] {spec.text!r}:", file=out)
                print(report.render(indent="  "), file=out)
            dataset_report.extend(report.diagnostics)
        if not args.skip_sqak:
            sqak = SqakEngine(database, extra_joins=extra_joins)
            for spec in queries:
                if spec.sqak_na:
                    continue
                try:
                    statement = sqak.compile(spec.text)
                except UnsupportedQueryError:
                    continue
                report = AnalysisReport()
                report.extend(analyze_select(statement.select, database.schema))
                plan = sqak.executor.plan_for(statement.select, NULL_TRACER)
                report.extend(analyze_plan(plan))
                artifacts += 1
                if report.has_findings:
                    findings += 1
                    print(f"{dataset} {spec.qid} [sqak] {spec.text!r}:", file=out)
                    print(report.render(indent="  "), file=out)
                dataset_report.extend(report.diagnostics)
        worst = dataset_report.worst()
        status = "clean" if worst is None or worst < Severity.WARNING else str(worst)
        print(f"{dataset}: {status}", file=out)
    print(
        f"check: {artifacts} artifacts analyzed, "
        f"{findings} with findings",
        file=out,
    )
    return 1 if findings else 0
