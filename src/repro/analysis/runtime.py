"""Runtime lock-order sanitizer: the dynamic half of the C-code family.

The static pass (:mod:`repro.analysis.concurrency`) reasons about the
locks the code *could* take; this module observes the locks the code
*does* take.  A :class:`LockSanitizer` monkeypatches the
``threading.Lock`` / ``threading.RLock`` factories so that locks created
from watched source files come back wrapped in a :class:`SanitizedLock`
that records, per thread:

* the set of sanitized locks currently held,
* every pairwise acquisition-order edge (lock A held while B acquired),
* how long each outermost hold lasted.

From those observations it reports:

* **C002** — an *inversion*: two locks acquired in both orders anywhere
  in the run.  This is the lockdep insight: a deadlock needs the
  conflicting schedule only once, but the *order violation* is visible
  on every run that merely exercises both code paths.
* **C007** — an anomalously long hold (over ``hold_threshold_s``).
* **C008** — cross-validation against the static model: a lock the
  static pass believes guards state was created during the run but never
  once acquired, meaning the tests never exercised the discipline the
  model describes (or the model is wrong about that lock).

Locks created via ``dataclasses.field(default_factory=threading.Lock)``
are invisible to the factory patch (the creating frame is
``dataclasses.py``); the static model marks those sites ``via_factory``
and :meth:`LockSanitizer.cross_validate` skips them, so the two halves
agree about scope.

Typical use — the test-suite fixture (see ``tests/conftest.py``)::

    with LockSanitizer(watch=("repro/service/",)) as sanitizer:
        run_workload()
    assert sanitizer.inversions() == []

The sanitizer is test instrumentation: it is never installed in
production paths, and uninstalling restores the original factories.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "LockOrigin",
    "LockSanitizer",
    "SanitizedLock",
]

#: outermost holds longer than this (seconds) are reported as C007
_DEFAULT_HOLD_THRESHOLD_S = 1.0


@dataclass(frozen=True)
class LockOrigin:
    """Where a sanitized lock was created (normalized source site)."""

    path: str
    lineno: int

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}"


def _normalize_path(filename: str) -> str:
    """A creation-frame filename as a repo-relative POSIX path.

    Mirrors the static model's root-relative paths
    (``repro/service/cache.py``) so the two sides can be joined.
    """
    posix = PurePosixPath(filename).as_posix()
    for marker in ("/src/", "/tests/", "/docs/"):
        if marker in posix:
            prefix = "" if marker == "/src/" else marker.strip("/") + "/"
            return prefix + posix.split(marker, 1)[1]
    return posix


class _ThreadState(threading.local):
    """Per-thread sanitizer state (held stack and re-entrancy depths)."""

    def __init__(self) -> None:
        self.held: List["SanitizedLock"] = []
        self.depths: Dict[int, int] = {}
        self.starts: Dict[int, float] = {}


class SanitizedLock:
    """A lock wrapper that reports acquisition events to its sanitizer.

    Supports the full lock protocol (``acquire``/``release``, context
    manager, ``locked``); anything else is delegated to the wrapped
    lock.  Re-entrant acquisitions of an ``RLock`` are counted but only
    the outermost acquire/release is recorded — nested ones cannot
    introduce ordering.
    """

    def __init__(
        self,
        inner: Any,
        origin: LockOrigin,
        sanitizer: "LockSanitizer",
    ) -> None:
        self._inner = inner
        self.origin = origin
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._on_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        locked_fn = getattr(self._inner, "locked", None)
        if locked_fn is None:  # RLock on some versions has no locked()
            return False
        return bool(locked_fn())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"SanitizedLock({self.origin}, {self._inner!r})"


@dataclass
class _Observations:
    """Everything a run records, guarded by the sanitizer's meta lock."""

    created: Dict[LockOrigin, int] = field(default_factory=dict)
    acquired: Set[LockOrigin] = field(default_factory=set)
    #: (held origin, acquired origin) -> observation count
    edges: Dict[Tuple[LockOrigin, LockOrigin], int] = field(
        default_factory=dict
    )
    #: origin -> longest outermost hold in seconds
    longest_hold: Dict[LockOrigin, float] = field(default_factory=dict)


class LockSanitizer:
    """Instrumented-lock mode: record acquisition order during a run.

    ``watch`` is a sequence of path substrings; a lock is wrapped iff
    the (normalized) filename of the frame that called
    ``threading.Lock()`` / ``threading.RLock()`` contains one of them.
    Everything else — stdlib internals, unwatched modules — gets a real
    lock, so the sanitizer's blast radius is exactly the watched code.
    """

    def __init__(
        self,
        watch: Sequence[str] = ("repro/",),
        hold_threshold_s: float = _DEFAULT_HOLD_THRESHOLD_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.watch = tuple(watch)
        self.hold_threshold_s = hold_threshold_s
        self.clock = clock
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        # meta state is guarded by a *real* lock so the sanitizer never
        # observes (or deadlocks on) itself
        self._meta_lock = self._real_lock()
        self._state = _ThreadState()
        self._observations = _Observations()
        self._installed = False

    # -- lifecycle -----------------------------------------------------
    def install(self) -> "LockSanitizer":
        """Patch the ``threading`` lock factories (idempotent)."""
        if self._installed:
            return self
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        threading.Lock = self._make_factory(self._real_lock)  # type: ignore[assignment]
        threading.RLock = self._make_factory(self._real_rlock)  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._real_lock  # type: ignore[assignment]
        threading.RLock = self._real_rlock  # type: ignore[assignment]
        self._installed = False

    def __enter__(self) -> "LockSanitizer":
        return self.install()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.uninstall()

    def _make_factory(self, real: Callable[[], Any]) -> Callable[[], Any]:
        def factory() -> Any:
            lock = real()
            frame = sys._getframe(1)
            path = _normalize_path(frame.f_code.co_filename)
            if not any(tag in path for tag in self.watch):
                return lock
            return self.wrap(lock, LockOrigin(path, frame.f_lineno))

        return factory

    def wrap(self, lock: Any, origin: LockOrigin) -> SanitizedLock:
        """Wrap *lock* explicitly (tests, or locks made before install)."""
        with self._meta_lock:
            self._observations.created[origin] = (
                self._observations.created.get(origin, 0) + 1
            )
        return SanitizedLock(lock, origin, self)

    # -- event recording (called from SanitizedLock) -------------------
    def _on_acquire(self, lock: SanitizedLock) -> None:
        state = self._state
        key = id(lock)
        depth = state.depths.get(key, 0)
        state.depths[key] = depth + 1
        if depth > 0:  # re-entrant RLock acquire: no new ordering
            return
        with self._meta_lock:
            self._observations.acquired.add(lock.origin)
            for held in state.held:
                if held.origin != lock.origin:
                    edge = (held.origin, lock.origin)
                    self._observations.edges[edge] = (
                        self._observations.edges.get(edge, 0) + 1
                    )
        state.held.append(lock)
        state.starts[key] = self.clock()

    def _on_release(self, lock: SanitizedLock) -> None:
        state = self._state
        key = id(lock)
        depth = state.depths.get(key, 0)
        if depth == 0:
            # released by a thread that never acquired it (hand-off
            # protocols); nothing was recorded for this thread
            return
        state.depths[key] = depth - 1
        if depth > 1:
            return
        start = state.starts.pop(key, None)
        if lock in state.held:
            state.held.remove(lock)
        if start is None:
            return
        duration = self.clock() - start
        with self._meta_lock:
            longest = self._observations.longest_hold.get(lock.origin, 0.0)
            if duration > longest:
                self._observations.longest_hold[lock.origin] = duration

    # -- reporting -----------------------------------------------------
    def order_edges(self) -> Dict[Tuple[LockOrigin, LockOrigin], int]:
        with self._meta_lock:
            return dict(self._observations.edges)

    def inversions(self) -> List[Tuple[LockOrigin, LockOrigin]]:
        """Lock pairs observed in both acquisition orders (sorted)."""
        edges = self.order_edges()
        seen: Set[Tuple[LockOrigin, LockOrigin]] = set()
        inverted: List[Tuple[LockOrigin, LockOrigin]] = []
        for first, second in edges:
            pair = tuple(sorted((first, second), key=str))
            if pair in seen:
                continue
            if (second, first) in edges:
                seen.add(pair)  # type: ignore[arg-type]
                inverted.append((pair[0], pair[1]))
        return sorted(inverted, key=lambda pair: (str(pair[0]), str(pair[1])))

    def long_holds(self) -> Dict[LockOrigin, float]:
        with self._meta_lock:
            return {
                origin: duration
                for origin, duration in self._observations.longest_hold.items()
                if duration > self.hold_threshold_s
            }

    def report(self) -> List[Diagnostic]:
        """C002 inversions and C007 long holds as diagnostics."""
        edges = self.order_edges()
        diagnostics = [
            Diagnostic(
                code="C002",
                severity=Severity.ERROR,
                message=(
                    f"lock-order inversion observed at runtime: "
                    f"{first} -> {second} ({edges.get((first, second), 0)}x) "
                    f"and {second} -> {first} "
                    f"({edges.get((second, first), 0)}x)"
                ),
                location=f"{first} <-> {second}",
                hint="impose a global acquisition order",
            )
            for first, second in self.inversions()
        ]
        diagnostics.extend(
            Diagnostic(
                code="C007",
                severity=Severity.WARNING,
                message=(
                    f"lock held for {duration:.3f}s "
                    f"(threshold {self.hold_threshold_s:.3f}s)"
                ),
                location=str(origin),
                hint="shrink the critical section",
            )
            for origin, duration in sorted(
                self.long_holds().items(), key=lambda item: str(item[0])
            )
        )
        return diagnostics

    def cross_validate(self, model: Any) -> List[Diagnostic]:
        """C008: statically-inferred guards this run created but never
        once acquired.

        *model* is a :class:`repro.analysis.concurrency.LockModel`.  A
        guard whose owning class was never instantiated during the run
        is out of scope (nothing was guarded); ``via_factory`` sites are
        skipped because the factory patch cannot see them.
        """
        with self._meta_lock:
            created = dict(self._observations.created)
            acquired = set(self._observations.acquired)
        created_by_site = {
            (origin.path, origin.lineno): origin for origin in created
        }
        acquired_sites = {
            (origin.path, origin.lineno) for origin in acquired
        }
        diagnostics: List[Diagnostic] = []
        for lock_id, site in sorted(
            model.guarding_locks().items(), key=lambda item: str(item[0])
        ):
            if site.via_factory:
                continue
            key = (site.path, site.lineno)
            if key not in created_by_site:
                continue  # owner class never instantiated in this run
            if key not in acquired_sites:
                diagnostics.append(
                    Diagnostic(
                        code="C008",
                        severity=Severity.ERROR,
                        message=(
                            f"{lock_id} guards state per the static "
                            f"model but was created and never acquired "
                            f"during this run"
                        ),
                        location=f"{site.path}:{site.lineno}",
                        hint="exercise the guarded path in tests, or "
                        "fix the static model",
                    )
                )
        return diagnostics


def sanitizer_from_env(
    env_value: Optional[str],
) -> Optional[LockSanitizer]:
    """The sanitizer the ``REPRO_LOCK_SANITIZER`` env variable asks for.

    ``None``/empty — disabled; ``"1"``/``"on"`` — watch the service
    stack; ``"strict"`` — same, and the caller should additionally
    cross-validate against the static model.
    """
    if not env_value:
        return None
    return LockSanitizer(watch=("repro/service/",))
