"""Static analysis of pipeline artifacts (patterns, SQL, plans, rewrites).

Three analyzer families share one :class:`Diagnostic` model:

* pattern analyzers (``P...`` codes) — connectivity, minimality, ORA
  consistency, disambiguation and DISTINCT-projection preconditions;
* SQL/plan analyzers (``S...``) — name resolution, grouping discipline,
  schema-aware type inference, aggregate-nesting legality, and
  ``CompiledPlan`` index soundness;
* rewrite analyzers (``R...``) — §4.1 Rule 1–3 postconditions.

See ``docs/ANALYSIS.md`` for the full code catalog, strict mode and the
``repro check`` CLI.
"""

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.pattern_analyzers import (
    analyze_interpretation_set,
    analyze_pattern,
    analyze_translation,
)
from repro.analysis.pipeline import TranslationParts, analyze_compilation
from repro.analysis.plan_analyzers import analyze_plan
from repro.analysis.rewrite_analyzers import analyze_rewrite
from repro.analysis.sql_analyzers import analyze_dialect, analyze_select

__all__ = [
    "CODE_CATALOG",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "TranslationParts",
    "analyze_compilation",
    "analyze_interpretation_set",
    "analyze_pattern",
    "analyze_plan",
    "analyze_rewrite",
    "analyze_dialect",
    "analyze_select",
    "analyze_translation",
]
