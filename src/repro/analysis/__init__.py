"""Static analysis of pipeline artifacts (patterns, SQL, plans, rewrites).

Three analyzer families share one :class:`Diagnostic` model:

* pattern analyzers (``P...`` codes) — connectivity, minimality, ORA
  consistency, disambiguation and DISTINCT-projection preconditions;
* SQL/plan analyzers (``S...``) — name resolution, grouping discipline,
  schema-aware type inference, aggregate-nesting legality, and
  ``CompiledPlan`` index soundness;
* rewrite analyzers (``R...``) — §4.1 Rule 1–3 postconditions.

Two further passes analyze the *codebase* rather than its artifacts:
the LR lint rules (:mod:`repro.analysis.codebase`) and the concurrency
discipline family (``C...`` codes) — the static lock model of
:mod:`repro.analysis.concurrency` plus the runtime lock-order sanitizer
of :mod:`repro.analysis.runtime`.

See ``docs/ANALYSIS.md`` for the full code catalog, strict mode and the
``repro check`` CLI.
"""

from repro.analysis.concurrency import (
    ConcurrencyReport,
    LockModel,
    analyze_concurrency,
    build_lock_model,
)
from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.pattern_analyzers import (
    analyze_interpretation_set,
    analyze_pattern,
    analyze_translation,
)
from repro.analysis.pipeline import TranslationParts, analyze_compilation
from repro.analysis.plan_analyzers import analyze_plan
from repro.analysis.rewrite_analyzers import analyze_rewrite
from repro.analysis.runtime import LockSanitizer
from repro.analysis.sql_analyzers import analyze_dialect, analyze_select

__all__ = [
    "CODE_CATALOG",
    "AnalysisReport",
    "ConcurrencyReport",
    "Diagnostic",
    "LockModel",
    "LockSanitizer",
    "Severity",
    "TranslationParts",
    "analyze_compilation",
    "analyze_concurrency",
    "analyze_interpretation_set",
    "analyze_pattern",
    "analyze_plan",
    "analyze_rewrite",
    "analyze_dialect",
    "analyze_select",
    "analyze_translation",
    "build_lock_model",
]
