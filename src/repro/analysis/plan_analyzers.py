"""Physical-plan analyzers: CompiledPlan consistency checks.

:func:`analyze_plan` re-derives the soundness invariant that
``CompiledPlan._index_strategy`` is supposed to maintain, independently of
its implementation:

* **S020** — every :class:`~repro.relational.plan.IndexLookup` kind must be
  sound for the scanned column's datatype and the probe value's Python
  type: ``contains`` needs a TEXT/DATE column; ``numeric-eq`` needs a
  numeric column probed with a number; ``hash-eq`` needs a TEXT/DATE
  column probed with a string.  An unsound lookup would return a candidate
  set that diverges from the interpreted executor;
* **S021** — every pushed predicate may reference only the scan's own
  alias (a cross-scan predicate evaluated on one table reads garbage).

Two planner-facing advisories read the optimizer's
:class:`~repro.planner.optimizer.PlanDecisions` when the plan carries
them (``plan.decisions`` is ``None`` under ``optimizer=off``):

* **S022** (warning) — the estimated joined cardinality exceeds the
  *row_budget*, so the statement is predicted to materialize an
  intermediate large enough to deserve a look before running it;
* **S023** (info) — an index lookup was available on a scan but the
  cost model chose the sequential path, the visible trace of an
  access-path decision (informational: skipping an unselective index is
  usually the *right* call, see ``docs/PLANNER.md``).

Derived scans are analyzed recursively through their sub-plans.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.relational.plan import CompiledPlan, _DerivedScan, _TableScan
from repro.relational.types import DataType
from repro.sql.ast import ColumnRef
from repro.sql.render import render_expr

_TEXT_LIKE = (DataType.TEXT, DataType.DATE)
_NUMERIC = (DataType.INT, DataType.FLOAT)

#: S022 threshold: joined cardinalities the planner itself handles fine
#: stay silent — only estimates predicting a runaway intermediate warn
DEFAULT_ROW_BUDGET = 1_000_000


def analyze_plan(
    plan: CompiledPlan,
    location: str = "",
    row_budget: int = DEFAULT_ROW_BUDGET,
) -> List[Diagnostic]:
    """Soundness + planner diagnostics for one compiled physical plan."""
    diagnostics: List[Diagnostic] = []
    for scan in plan.scans:
        if isinstance(scan, _TableScan):
            diagnostics.extend(_check_table_scan(scan, location))
        elif isinstance(scan, _DerivedScan):
            sub_location = (
                f"{location}/derived {scan.alias}"
                if location
                else f"derived {scan.alias}"
            )
            diagnostics.extend(
                analyze_plan(scan.subplan, sub_location, row_budget=row_budget)
            )
            diagnostics.extend(_check_pushed_scope(scan, location))
    diagnostics.extend(_check_decisions(plan, location, row_budget))
    return diagnostics


def _check_decisions(
    plan: CompiledPlan, location: str, row_budget: int
) -> List[Diagnostic]:
    """S022/S023: advisories derived from the optimizer's decisions."""
    decisions = plan.decisions
    if decisions is None:
        return []
    diagnostics: List[Diagnostic] = []
    if decisions.est_joined > row_budget:
        diagnostics.append(
            Diagnostic(
                "S022",
                Severity.WARNING,
                f"estimated joined cardinality "
                f"{decisions.est_joined:,.0f} exceeds the row budget "
                f"{row_budget:,}",
                location,
                hint="a predicted runaway intermediate — check the join "
                "conditions (or raise row_budget if the size is intended)",
            )
        )
    for scan in plan.scans:
        if not isinstance(scan, _TableScan):
            continue
        decision = decisions.scans.get(scan.alias)
        if decision is None:
            continue
        for pushed, kept in zip(scan.pushed, decision.index_choices):
            lookup = pushed.lookup
            if lookup is None or lookup.kind == "never" or kept is not False:
                continue
            diagnostics.append(
                Diagnostic(
                    "S023",
                    Severity.INFO,
                    f"scan {scan.alias!r}: {lookup.describe()} available "
                    f"but the cost model chose a sequential scan",
                    location,
                )
            )
    return diagnostics


def _check_table_scan(scan: _TableScan, location: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_pushed_scope(scan, location))
    for pushed in scan.pushed:
        lookup = pushed.lookup
        if lookup is None or lookup.kind == "never":
            continue
        if not scan.schema.has_column(lookup.column):
            diagnostics.append(
                Diagnostic(
                    "S021",
                    Severity.ERROR,
                    f"index lookup on {lookup.table}.{lookup.column}: column "
                    f"is not in the scanned relation",
                    location,
                )
            )
            continue
        dtype = scan.schema.column(lookup.column).dtype
        problem = _lookup_problem(lookup.kind, dtype, lookup.value)
        if problem:
            diagnostics.append(
                Diagnostic(
                    "S020",
                    Severity.ERROR,
                    f"{lookup.kind} lookup on {lookup.table}.{lookup.column} "
                    f"({dtype}): {problem}",
                    location,
                    hint="index strategies must agree with the column "
                    "datatype, else index and interpreted paths diverge",
                )
            )
    return diagnostics


def _lookup_problem(kind: str, dtype: DataType, value: object) -> str:
    if kind == "contains":
        if dtype not in _TEXT_LIKE:
            return "inverted index over a non-text column"
        if not isinstance(value, str):
            return f"non-string probe {value!r}"
    elif kind == "numeric-eq":
        if dtype not in _NUMERIC:
            return "numeric index over a non-numeric column"
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"non-numeric probe {value!r}"
    elif kind == "hash-eq":
        if dtype not in _TEXT_LIKE:
            return "hash-eq chosen where the numeric index applies"
        if not isinstance(value, str):
            return f"non-string probe {value!r}"
    else:
        return f"unknown lookup kind {kind!r}"
    return ""


def _check_pushed_scope(scan: object, location: str) -> List[Diagnostic]:
    """S021: pushed predicates may only reference the scan's own alias."""
    diagnostics: List[Diagnostic] = []
    alias = getattr(scan, "alias")
    for pushed in getattr(scan, "pushed"):
        foreign = sorted(
            {
                node.qualifier
                for node in pushed.expr.walk()
                if isinstance(node, ColumnRef)
                and node.qualifier is not None
                and node.qualifier != alias
            }
        )
        if foreign:
            diagnostics.append(
                Diagnostic(
                    "S021",
                    Severity.ERROR,
                    f"predicate {render_expr(pushed.expr)} pushed to scan "
                    f"{alias!r} references alias(es) {foreign}",
                    location,
                )
            )
    return diagnostics
