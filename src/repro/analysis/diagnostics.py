"""The shared diagnostic model of the static-analysis subsystem.

Every analyzer family (pattern, SQL/plan, rewrite) reports findings as
:class:`Diagnostic` values: a stable code (``P002``, ``S010``, ``R004``),
a :class:`Severity`, a human message, the location of the artifact the
finding is about, and a fix hint.  Codes are namespaced by family:

* ``Pxxx`` — query-pattern analyzers (:mod:`repro.analysis.pattern_analyzers`)
* ``Sxxx`` — SQL and physical-plan analyzers
  (:mod:`repro.analysis.sql_analyzers`,
  :mod:`repro.analysis.plan_analyzers`, and the codes assigned by
  :func:`repro.sql.validate.validate_select`)
* ``Rxxx`` — rewrite postconditions (:mod:`repro.analysis.rewrite_analyzers`)
* ``Cxxx`` — concurrency discipline: the static lock-model pass
  (:mod:`repro.analysis.concurrency`) and the runtime lock-order
  sanitizer (:mod:`repro.analysis.runtime`)

``docs/ANALYSIS.md`` documents every code; :data:`CODE_CATALOG` is the
machine-readable version of that table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


class Severity(enum.IntEnum):
    """How bad a finding is; ordered so ``max()`` picks the worst."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded, located, actionable problem description."""

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        tail = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity}: {self.message}{where}{tail}"


# One-line description of every diagnostic code the analyzers can emit.
CODE_CATALOG: Dict[str, str] = {
    # -- pattern analyzers ---------------------------------------------
    "P001": "query pattern has no nodes",
    "P002": "query pattern is not connected",
    "P003": "non-minimal pattern: unannotated leaf node contributes nothing",
    "P004": "pattern node does not match any ORM schema-graph node",
    "P005": "annotation references an attribute its node does not own",
    "P006": "pattern edge's ORM edge does not connect its endpoints",
    "P007": "multi-object condition has no GROUPBY(identifier) variant",
    "P008": "invalid aggregate function or outer chain on an annotation",
    "P009": "partial n-ary relationship use without a DISTINCT projection",
    # -- SQL analyzers (validate_select + type inference) --------------
    "S001": "unknown table in FROM",
    "S002": "unresolved column or alias reference",
    "S003": "ambiguous unqualified column reference",
    "S004": "duplicate FROM alias",
    "S005": "'*' used outside COUNT(*)",
    "S006": "aggregate nested inside another aggregate",
    "S007": "aggregate in WHERE or GROUP BY clause",
    "S008": "non-aggregate output column missing from GROUP BY",
    "S009": "malformed statement shape (empty FROM, negative LIMIT)",
    "S010": "SUM/AVG over a non-numeric column",
    "S011": "comparison across incompatible datatypes",
    "S012": "arithmetic on a non-numeric operand",
    "S013": "contains-predicate on a non-text column",
    "S014": "ORDER BY references neither an output name nor a column",
    "S015": "outer aggregate over an ungrouped aggregate subquery",
    "S016": "statement not renderable in the target SQL dialect",
    # -- plan analyzers ------------------------------------------------
    "S020": "index lookup kind is unsound for the column datatype",
    "S021": "pushed predicate references a column outside its scan",
    "S022": "estimated plan cardinality exceeds the row budget",
    "S023": "index lookup available but the plan chose a sequential scan",
    # -- rewrite analyzers ---------------------------------------------
    "R001": "rewritten SQL references a relation outside the base schema",
    "R002": "rewrite changed the GROUP BY keys",
    "R003": "rewrite changed the output columns",
    "R004": "fragment projection lost its view key",
    "R005": "rewrite changed the aggregate functions",
    # -- concurrency analyzers (static + runtime sanitizer) ------------
    "C001": "attribute mutated both inside and outside its lock guard",
    "C002": "cycle in the lock-acquisition-order graph (potential deadlock)",
    "C003": "blocking call while holding a lock",
    "C004": "manual acquire() without try/finally release, or lock escape",
    "C005": "fork-safety violation (pre-fork thread or unguarded child write)",
    "C006": "un-timed condition wait on the request path",
    "C007": "anomalously long lock hold observed at runtime",
    "C008": "statically-inferred guard never observed held at runtime",
}


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics with severity roll-ups."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def add(self, finding: Diagnostic) -> None:
        self.diagnostics.append(finding)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def has_findings(self) -> bool:
        """True when anything of WARNING severity or worse was found."""
        return any(
            d.severity is not Severity.INFO for d in self.diagnostics
        )

    def worst(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render(self, indent: str = "") -> str:
        if not self.diagnostics:
            return f"{indent}no diagnostics"
        return "\n".join(f"{indent}{d}" for d in self.diagnostics)
