"""Rewrite analyzers: postconditions for the §4.1 Rules 1–3.

The rewriter (:mod:`repro.unnormalized.rewriter`) collapses fragment joins
into stored relations (Rule 3), prunes unused projections (Rule 1) and
pushes ``contains`` conditions down (Rule 2).  Each rule must preserve the
statement's *answer*; :func:`analyze_rewrite` verifies the observable
invariants without executing anything:

* **R001** — the rewritten statement only reads relations of the stored
  (base) schema: rewriting must never invent tables;
* **R002** — the GROUP BY keys (by column name) are unchanged: collapsing
  fragments may re-qualify keys but never add/drop/rename them;
* **R003** — the output columns (names, in order) are unchanged;
* **R004** — every surviving fragment projection still exposes its view
  key: Rule 1 pruning the key would change DISTINCT granularity and thus
  aggregate results (Example 9);
* **R005** — the aggregate functions of the output are unchanged.

Nested-aggregate wrapper levels are compared recursively as long as both
sides keep the single-derived-table wrapper shape.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.relational.schema import DatabaseSchema
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    FromItem,
    FuncCall,
    Select,
    TableRef,
)
from repro.unnormalized.provider import FragmentUse


def analyze_rewrite(
    original: Select,
    rewritten: Select,
    fragment_uses: Dict[str, FragmentUse],
    base_schema: DatabaseSchema,
    location: str = "",
) -> List[Diagnostic]:
    """Postcondition diagnostics comparing a statement before/after rewrite."""
    diagnostics: List[Diagnostic] = []

    def report(code: str, message: str, hint: str = "") -> None:
        diagnostics.append(
            Diagnostic(code, Severity.ERROR, message, location, hint)
        )

    for table in _referenced_tables(rewritten):
        if table not in base_schema:
            report(
                "R001",
                f"rewritten SQL reads unknown relation {table!r}",
                hint="Rule 3 must substitute stored relations only",
            )

    _compare_levels(original, rewritten, report)

    for item in _all_from_items(rewritten):
        use = fragment_uses.get(item.alias)
        if use is None or not isinstance(item, DerivedTable):
            continue
        exposed = {
            sub.output_name(default=f"col{i + 1}")
            for i, sub in enumerate(item.select.items)
        }
        # only keys the provider actually projected can be *lost* by Rule 1;
        # force-distinct projections legitimately omit the view key upfront
        missing = [
            key
            for key in use.view_key
            if key in use.attributes and key not in exposed
        ]
        if missing and item.select.distinct:
            report(
                "R004",
                f"fragment {item.alias} ({use.source}) lost view key "
                f"column(s) {missing}",
                hint="Rule 1 must retain the view key of DISTINCT "
                "projections (Example 9)",
            )
    return diagnostics


def _compare_levels(
    original: Select, rewritten: Select, report: Callable[..., None]
) -> None:
    """R002/R003/R005 at this wrapper level, then recurse when possible."""
    before_keys = _group_key_names(original)
    after_keys = _group_key_names(rewritten)
    if before_keys != after_keys:
        report(
            "R002",
            f"GROUP BY keys changed from {before_keys} to {after_keys}",
        )
    before_out = _output_names(original)
    after_out = _output_names(rewritten)
    if before_out != after_out:
        report(
            "R003",
            f"output columns changed from {before_out} to {after_out}",
        )
    before_aggs = _aggregate_signature(original)
    after_aggs = _aggregate_signature(rewritten)
    if before_aggs != after_aggs:
        report(
            "R005",
            f"aggregates changed from {before_aggs} to {after_aggs}",
        )
    # nested-aggregate wrapping: both sides keep a single derived table
    original_inner = original.subqueries()
    rewritten_inner = rewritten.subqueries()
    if (
        len(original.from_items) == 1
        and len(rewritten.from_items) == 1
        and len(original_inner) == 1
        and len(rewritten_inner) == 1
        and original_inner[0].has_aggregates()
    ):
        _compare_levels(original_inner[0], rewritten_inner[0], report)


def _group_key_names(select: Select) -> List[str]:
    return [
        expr.name if isinstance(expr, ColumnRef) else repr(expr)
        for expr in select.group_by
    ]


def _output_names(select: Select) -> List[str]:
    return [
        item.output_name(default=f"col{i + 1}")
        for i, item in enumerate(select.items)
    ]


def _aggregate_signature(select: Select) -> List[Tuple[str, bool]]:
    signature: List[Tuple[str, bool]] = []
    for item in select.items:
        for node in item.expr.walk():
            if isinstance(node, FuncCall) and node.is_aggregate:
                signature.append((node.name.upper(), node.distinct))
    return signature


def _referenced_tables(select: Select) -> List[str]:
    tables: List[str] = []

    def visit(current: Select) -> None:
        for item in current.from_items:
            if isinstance(item, TableRef):
                tables.append(item.table)
            elif isinstance(item, DerivedTable):
                visit(item.select)

    visit(select)
    return tables


def _all_from_items(select: Select) -> List[FromItem]:
    items: List[FromItem] = []

    def visit(current: Select) -> None:
        for item in current.from_items:
            items.append(item)
            if isinstance(item, DerivedTable):
                visit(item.select)

    visit(select)
    return items
