"""SQAK's schema graph: relations as nodes, FK references as edges.

Unlike the ORM schema graph, there is no classification — every relation is
just a node, which is precisely why SQAK cannot distinguish objects from
relationships or detect duplication (the paper's central critique).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema, ForeignKey


JoinEdge = Tuple[str, str, Tuple[str, ...], Tuple[str, ...]]
# (child relation, parent relation, child columns, parent columns)


class SchemaGraph:
    """Plain undirected graph over relations, edges labelled by FKs.

    ``extra_joins`` adds shared-attribute join edges that are not declared
    foreign keys — denormalized schemas (Table 7's ACMDL') connect
    ``PaperAuthor`` and ``EditorProceeding`` through the non-key ``procid``
    column, which SQAK's published SQL exploits.
    """

    def __init__(
        self, schema: DatabaseSchema, extra_joins: Sequence[JoinEdge] = ()
    ) -> None:
        self.schema = schema
        self._adjacency: Dict[str, Dict[str, List[ForeignKey]]] = {
            rel.name: {} for rel in schema
        }
        self._fk_child: Dict[Tuple[str, str], str] = {}
        for rel in schema:
            for fk in rel.foreign_keys:
                self._adjacency[rel.name].setdefault(fk.ref_table, []).append(fk)
                self._adjacency[fk.ref_table].setdefault(rel.name, []).append(fk)
                self._fk_child[(rel.name, fk.ref_table)] = rel.name
        for child, parent, child_cols, parent_cols in extra_joins:
            pseudo = ForeignKey(tuple(child_cols), parent, tuple(parent_cols))
            self._adjacency[child].setdefault(parent, []).append(pseudo)
            self._adjacency[parent].setdefault(child, []).append(pseudo)
            self._fk_child.setdefault((child, parent), child)

    def neighbors(self, name: str) -> List[str]:
        return sorted(self._adjacency.get(name, {}))

    def foreign_keys_between(self, first: str, second: str) -> List[ForeignKey]:
        return list(self._adjacency.get(first, {}).get(second, []))

    def child_of_edge(self, first: str, second: str) -> str:
        """Which endpoint holds the foreign key for the (first, second) edge."""
        fks = self.foreign_keys_between(first, second)
        if not fks:
            raise SchemaError(f"no edge between {first!r} and {second!r}")
        child = self._fk_child.get((first, second)) or self._fk_child.get(
            (second, first)
        )
        assert child is not None
        return child

    def shortest_path(self, source: str, target: str) -> Optional[List[str]]:
        if source == target:
            return [source]
        visited = {source}
        parents: Dict[str, str] = {}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parents[neighbor] = current
                if neighbor == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(neighbor)
        return None

    def steiner_tree(self, terminals: Sequence[str]) -> Set[Tuple[str, str]]:
        """Minimal connected subgraph over *terminals* (the relations of one
        simple query network), via the shortest-path heuristic."""
        unique = list(dict.fromkeys(terminals))
        if not unique:
            return set()
        in_tree: Set[str] = {unique[0]}
        edges: Set[Tuple[str, str]] = set()
        for terminal in unique[1:]:
            if terminal in in_tree:
                continue
            best: Optional[List[str]] = None
            for anchor in sorted(in_tree):
                path = self.shortest_path(terminal, anchor)
                if path is not None and (best is None or len(path) < len(best)):
                    best = path
            if best is None:
                raise SchemaError(f"schema graph is disconnected at {terminal!r}")
            for first, second in zip(best, best[1:]):
                edges.add(tuple(sorted((first, second))))  # type: ignore[arg-type]
                in_tree.add(first)
                in_tree.add(second)
        return edges
