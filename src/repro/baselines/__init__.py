"""Baselines the paper compares against: SQAK."""

from repro.baselines.schema_graph import SchemaGraph
from repro.baselines.sqak import SqakEngine, SqakMatch, SqakStatement

__all__ = ["SchemaGraph", "SqakEngine", "SqakMatch", "SqakStatement"]
