"""The SQAK baseline (Tata & Lohman, SIGMOD 2008), reimplemented from its
published description and the SQL statements shown in the paper under
reproduction.

SQAK models the database as a plain schema graph, matches query terms to
relations (by relation name, attribute name or tuple value), connects the
matched relations with a minimal *simple query network* (SQN) and emits one
SQL statement:

* the aggregate is applied to the attribute following the aggregate term
  (or the primary key when the term names a relation);
* value-matched attributes are selected and grouped by — ``{Green SUM
  Credit}`` becomes ``GROUP BY Sname``, mixing every student named Green;
* relationship relations are joined as-is — no duplicate elimination — so
  a ternary relation traversed through two of its participants over-counts;
* denormalized relations are scanned as stored, so duplicated information
  is aggregated repeatedly.

Documented limitations (returned as N.A. by raising
:class:`~repro.errors.UnsupportedQueryError`):

* more than one aggregate function in the SELECT clause (queries T7, A6);
* self-joins — two value terms matching the same relation (T8, A7, A8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.schema_graph import SchemaGraph
from repro.errors import NoMatchError, UnsupportedQueryError
from repro.keywords.matcher import name_match_score
from repro.keywords.query import KeywordQuery, OperatorApplication, Term
from repro.observability import NULL_TRACER
from repro.relational.database import Database
from repro.relational.executor import Executor, QueryResult
from repro.sql.ast import (
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FuncCall,
    Select,
    SelectItem,
    TableRef,
    eq,
)
from repro.sql.render import render, render_pretty


@dataclass(frozen=True)
class SqakMatch:
    """SQAK's interpretation of one basic term."""

    term: Term
    relation: str
    kind: str  # 'relation' | 'attribute' | 'value'
    attribute: Optional[str] = None


@dataclass
class SqakStatement:
    """The single SQL statement SQAK generates for a query."""

    select: Select

    @property
    def sql(self) -> str:
        return render_pretty(self.select)

    @property
    def sql_compact(self) -> str:
        return render(self.select)


class SqakEngine:
    """Keyword search with aggregates, the SQAK way."""

    def __init__(self, database: Database, extra_joins: Sequence = ()) -> None:
        self.database = database
        self.graph = SchemaGraph(database.schema, extra_joins)
        self.executor = Executor(database)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match_term(self, term: Term) -> SqakMatch:
        """SQAK's best match for a term: relation name, then attribute
        name, then tuple value (deterministic tie-break by name)."""
        if not term.quoted:
            best: Optional[Tuple[float, str]] = None
            for relation in self.database.schema:
                score = name_match_score(term.text, relation.name)
                if score is not None and (best is None or score > best[0]):
                    best = (score, relation.name)
            if best is not None:
                return SqakMatch(term, best[1], "relation")
            best_attr: Optional[Tuple[float, str, str]] = None
            for relation in self.database.schema:
                for column in relation.columns:
                    score = name_match_score(term.text, column.name)
                    if score is not None and (
                        best_attr is None or score > best_attr[0]
                    ):
                        best_attr = (score, relation.name, column.name)
            if best_attr is not None:
                return SqakMatch(term, best_attr[1], "attribute", best_attr[2])
        hits = self.database.text_index.match_phrase(term.text)
        if hits:
            hit = hits[0]
            return SqakMatch(term, hit.relation, "value", hit.attribute)
        raise NoMatchError(f"SQAK: term {term.text!r} matches nothing")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, query_text: str, tracer=NULL_TRACER) -> SqakStatement:
        """Generate SQAK's SQL; raises UnsupportedQueryError for N.A.

        *tracer* records the same span/counter names as the semantic
        engine (``match``/``translate``, ``terms_matched``,
        ``patterns_translated``) so per-stage baseline comparisons line
        up metric for metric.
        """
        with tracer.span("parse"):
            query = KeywordQuery(query_text)
        with tracer.span("match"):
            matches = {
                term.position: self.match_term(term) for term in query.basic_terms
            }
            tracer.count("terms_matched", len(matches))
            tracer.count("tags_produced", len(matches))
        self._check_supported(query, matches)
        with tracer.span("translate"):
            statement = self._build_statement(query, matches)
        tracer.count("patterns_translated")
        return statement

    def _build_statement(
        self, query: KeywordQuery, matches: Dict[int, SqakMatch]
    ) -> SqakStatement:
        relations = list(
            dict.fromkeys(match.relation for match in matches.values())
        )
        tree_edges = self.graph.steiner_tree(relations)
        joined: List[str] = list(relations)
        for first, second in sorted(tree_edges):
            for name in (first, second):
                if name not in joined:
                    joined.append(name)

        aliases = {name: f"R{i + 1}" for i, name in enumerate(joined)}
        predicates: List[Expr] = []
        for first, second in sorted(tree_edges):
            child = self.graph.child_of_edge(first, second)
            parent = second if child == first else first
            fk = self.graph.foreign_keys_between(first, second)[0]
            for child_col, parent_col in zip(fk.columns, fk.ref_columns):
                predicates.append(
                    eq(
                        ColumnRef(child_col, aliases[child]),
                        ColumnRef(parent_col, aliases[parent]),
                    )
                )

        select_items: List[SelectItem] = []
        group_by: List[Expr] = []
        outer_chain: Tuple[str, ...] = ()
        aggregate_alias: Optional[str] = None

        # value conditions: select + group by the matched attribute
        for term in query.basic_terms:
            match = matches[term.position]
            if match.kind != "value":
                continue
            assert match.attribute is not None
            ref = ColumnRef(match.attribute, aliases[match.relation])
            predicates.append(Contains(ref, term.text))
            if not any(item.expr == ref for item in select_items):
                select_items.append(SelectItem(ref))
                group_by.append(ref)

        # operator applications (GROUPBY first so group keys lead the row)
        ordered_applications = sorted(
            query.applications, key=lambda app: not app.groupby
        )
        for application in ordered_applications:
            match = matches[application.target_position]
            target_ref = self._operand_ref(match, aliases)
            if application.groupby:
                if not any(item.expr == target_ref for item in select_items):
                    select_items.append(SelectItem(target_ref))
                    group_by.append(target_ref)
                continue
            func = application.chain[-1]
            alias = f"{func.lower()}_{target_ref.name}"
            select_items.append(
                SelectItem(FuncCall(func, (target_ref,)), alias=alias)
            )
            outer_chain = tuple(application.chain[:-1])
            aggregate_alias = alias

        from_items = tuple(TableRef(name, aliases[name]) for name in joined)
        select = Select(
            items=tuple(select_items),
            from_items=from_items,
            where=Select.conjunction(predicates),
            group_by=tuple(group_by),
        )
        for level, func in enumerate(reversed(outer_chain), start=1):
            assert aggregate_alias is not None
            new_alias = f"{func.lower()}_{aggregate_alias}"
            select = Select(
                items=(
                    SelectItem(
                        FuncCall(func, (ColumnRef(aggregate_alias),)),
                        alias=new_alias,
                    ),
                ),
                from_items=(DerivedTable(select, f"Q{level}"),),
            )
            aggregate_alias = new_alias
        return SqakStatement(select)

    def _operand_ref(
        self, match: SqakMatch, aliases: Dict[str, str]
    ) -> ColumnRef:
        if match.kind == "attribute":
            assert match.attribute is not None
            return ColumnRef(match.attribute, aliases[match.relation])
        if match.kind == "relation":
            key = self.database.schema.relation(match.relation).primary_key
            # for a composite key pick the column whose name best matches
            # the term ('proceeding' -> procid of EditorProceeding)
            best_col = key[0]
            best_score = -1.0
            for col in key:
                score = name_match_score(match.term.text, col) or 0.0
                if score > best_score:
                    best_score = score
                    best_col = col
            return ColumnRef(best_col, aliases[match.relation])
        raise UnsupportedQueryError(
            f"SQAK: operator applied to value term {match.term.text!r}"
        )

    def _check_supported(
        self, query: KeywordQuery, matches: Dict[int, SqakMatch]
    ) -> None:
        aggregate_chains = [
            application
            for application in query.applications
            if not application.groupby
        ]
        if len(aggregate_chains) > 1:
            raise UnsupportedQueryError(
                "SQAK: the SELECT clause of a generated SQL statement must "
                "specify exactly one aggregate function"
            )
        value_relations: List[str] = [
            match.relation
            for match in matches.values()
            if match.kind == "value"
        ]
        if len(value_relations) != len(set(value_relations)):
            raise UnsupportedQueryError(
                "SQAK: several value terms match the same relation "
                "(self-joins of relations are not generated)"
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query_text: str) -> QueryResult:
        return self.executor.execute(self.compile(query_text).select)

    def answer(self, query_text: str) -> Optional[QueryResult]:
        """Execute, or None when SQAK does not handle the query (N.A.)."""
        try:
            return self.execute(query_text)
        except UnsupportedQueryError:
            return None
