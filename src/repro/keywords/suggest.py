"""Query suggestions: help users who do not know the schema.

The paper's motivation is that users cannot write SQL because they do not
know the schema; a practical engine therefore needs completion.  Two
helpers:

* :func:`complete_term` — completions of a partial term from relation
  names, attribute names and (optionally) indexed values;
* :func:`next_term_kinds` — which kinds of term may legally follow the
  current query prefix under the Definition-1 constraints (drives UI
  hinting: after ``SUM`` only attribute names or aggregates make sense).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import InvalidQueryError
from repro.keywords.matcher import Catalog
from repro.keywords.query import (
    AGGREGATE_OPERATORS,
    GROUPBY_OPERATOR,
    KeywordQuery,
    TermKind,
)
from repro.keywords.tokenizer import tokenize_query


@dataclass(frozen=True)
class Suggestion:
    """One completion candidate."""

    text: str
    kind: str  # 'relation' | 'attribute' | 'value' | 'operator'
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.text} ({self.kind}{': ' + self.detail if self.detail else ''})"


def complete_term(
    catalog: Catalog,
    prefix: str,
    limit: int = 10,
    include_values: bool = True,
) -> List[Suggestion]:
    """Completions of *prefix*, metadata before values, shortest first."""
    lowered = prefix.lower()
    if not lowered:
        return []
    relations: List[Suggestion] = []
    attributes: List[Suggestion] = []
    for relation in catalog.relations():
        if relation.name.lower().startswith(lowered):
            relations.append(Suggestion(relation.name, "relation"))
        for column in relation.columns:
            if column.name.lower().startswith(lowered):
                attributes.append(
                    Suggestion(column.name, "attribute", detail=relation.name)
                )
    values: List[Suggestion] = []
    if include_values and len(lowered) >= 2:
        for token in catalog.value_completions(prefix, limit):
            for hit in catalog.value_matches(token):
                values.append(
                    Suggestion(
                        token,
                        "value",
                        detail=f"{hit.relation}.{hit.attribute} "
                        f"({hit.distinct_objects} objects)",
                    )
                )
    ordered = (
        sorted(relations, key=lambda s: (len(s.text), s.text))
        + sorted(attributes, key=lambda s: (len(s.text), s.text, s.detail))
        + values
    )
    seen = set()
    unique: List[Suggestion] = []
    for suggestion in ordered:
        key = (suggestion.text.lower(), suggestion.kind, suggestion.detail)
        if key in seen:
            continue
        seen.add(key)
        unique.append(suggestion)
    return unique[:limit]


def next_term_kinds(query_prefix: str) -> List[str]:
    """Which term kinds may follow *query_prefix* without violating the
    Definition-1 constraints.

    Returns a subset of ``['basic', 'aggregate', 'groupby', 'attribute',
    'relation-or-attribute']`` — the last two narrow 'basic' when the
    previous term is an operator.
    """
    prefix = query_prefix.strip()
    if not prefix:
        return ["basic", "aggregate", "groupby"]
    try:
        terms = tokenize_query(prefix)
    except InvalidQueryError:
        return []
    last = terms[-1]
    upper = last.text.upper()
    if not last.quoted and upper in AGGREGATE_OPERATORS:
        if upper == "COUNT":
            # COUNT's operand may be a relation or attribute name, or a
            # nested aggregate
            return ["relation-or-attribute", "aggregate"]
        return ["attribute", "aggregate"]
    if not last.quoted and upper == GROUPBY_OPERATOR:
        return ["relation-or-attribute"]
    return ["basic", "aggregate", "groupby"]


def suggest_queries(
    catalog: Catalog, limit: int = 8
) -> List[str]:
    """Example aggregate queries synthesized from the schema: one COUNT per
    relationship's participant pair and one aggregate per numeric
    attribute — a starting point for schema exploration."""
    from repro.orm.classify import RelationType
    from repro.relational.types import is_numeric

    suggestions: List[str] = []
    graph = catalog.graph
    for name in sorted(graph.nodes):
        node = graph.nodes[name]
        if node.type is RelationType.RELATIONSHIP:
            participants = graph.object_like_neighbors(name)
            if len(participants) >= 2:
                suggestions.append(
                    f"COUNT {participants[0]} GROUPBY {participants[1]}"
                )
    for relation in catalog.relations():
        for column in relation.columns:
            if column.name in relation.primary_key:
                continue
            if column.name in relation.fk_columns():
                continue
            if is_numeric(column.dtype):
                suggestions.append(f"{relation.name} AVG {column.name}")
                break
    return suggestions[:limit]
