"""Tokenizer for keyword queries.

Splits a query string into terms on whitespace, honouring double-quoted
phrases: ``COUNT supplier "Indian black chocolate"`` yields three terms, the
last one a phrase.  Phrases are always basic terms (they can never be
operators), which lets users quote an operator word to search for it as
data (``"count"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import InvalidQueryError


@dataclass(frozen=True)
class RawTerm:
    """One query term before classification."""

    text: str
    quoted: bool
    position: int  # 0-based index in the query


def tokenize_query(query: str) -> List[RawTerm]:
    """Split *query* into raw terms; raises on unbalanced quotes."""
    terms: List[RawTerm] = []
    i = 0
    length = len(query)
    position = 0
    while i < length:
        ch = query[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"':
            j = query.find('"', i + 1)
            if j < 0:
                raise InvalidQueryError(f"unbalanced quote at offset {i}")
            phrase = query[i + 1 : j].strip()
            if not phrase:
                raise InvalidQueryError(f"empty phrase at offset {i}")
            terms.append(RawTerm(phrase, quoted=True, position=position))
            position += 1
            i = j + 1
            continue
        j = i
        while j < length and not query[j].isspace() and query[j] != '"':
            j += 1
        terms.append(RawTerm(query[i:j], quoted=False, position=position))
        position += 1
        i = j
    if not terms:
        raise InvalidQueryError("empty keyword query")
    return terms
