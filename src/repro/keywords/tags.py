"""Interpretation tags: what one basic term may refer to.

A tag records one possible interpretation of a basic term against the ORM
schema graph: the ORM node it refers to, whether it names the relation, one
of its attributes, or a tuple value, and — for value matches — how many
distinct objects carry that value (which drives pattern disambiguation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class TagKind(enum.Enum):
    RELATION = "relation"  # term matches the relation's name
    ATTRIBUTE = "attribute"  # term matches an attribute name
    VALUE = "value"  # term matches tuple values of an attribute


@dataclass(frozen=True)
class Tag:
    """One interpretation of a basic term.

    ``node`` is the ORM node name; ``relation`` the concrete relation within
    the node that matched (differs from the node's main relation for
    component relations); ``attribute`` is set for attribute and value tags;
    ``distinct_objects`` counts, for value tags, the distinct identifiers of
    objects/relationships whose attribute contains the term.
    """

    term_position: int
    term_text: str
    kind: TagKind
    node: str
    relation: str
    attribute: Optional[str] = None
    distinct_objects: int = 0
    exactness: float = 1.0  # 1.0 exact name match, lower for fuzzy matches
    value: Any = None  # the matched numeric value for exact-value tags

    def describe(self) -> str:
        if self.kind is TagKind.RELATION:
            return f"{self.term_text!r} ~ relation {self.relation}"
        if self.kind is TagKind.ATTRIBUTE:
            return f"{self.term_text!r} ~ attribute {self.relation}.{self.attribute}"
        return (
            f"{self.term_text!r} ~ value of {self.relation}.{self.attribute} "
            f"({self.distinct_objects} objects)"
        )
