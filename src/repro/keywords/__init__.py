"""Keyword query language: tokenizer, term classification, matching."""

from repro.keywords.matcher import Catalog, NormalizedCatalog, TermMatcher, ValueHit, name_match_score
from repro.keywords.query import (
    AGGREGATE_OPERATORS,
    GROUPBY_OPERATOR,
    KeywordQuery,
    OperatorApplication,
    Term,
    TermKind,
)
from repro.keywords.suggest import (
    Suggestion,
    complete_term,
    next_term_kinds,
    suggest_queries,
)
from repro.keywords.tags import Tag, TagKind
from repro.keywords.tokenizer import RawTerm, tokenize_query

__all__ = [
    "AGGREGATE_OPERATORS",
    "Catalog",
    "GROUPBY_OPERATOR",
    "KeywordQuery",
    "NormalizedCatalog",
    "OperatorApplication",
    "RawTerm",
    "Suggestion",
    "Tag",
    "TagKind",
    "Term",
    "TermKind",
    "TermMatcher",
    "ValueHit",
    "complete_term",
    "name_match_score",
    "next_term_kinds",
    "suggest_queries",
    "tokenize_query",
]
