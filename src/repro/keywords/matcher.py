"""Term matching: find every interpretation (tag) of each basic term.

Matching runs against a *catalog*: the logical schema the ORM graph is built
on plus a way to probe tuple values.  For a normalized database the catalog
is the database itself; for an unnormalized database it is the normalized
view, which maps value hits on the stored relations to the view relations
that own the matched attribute (Algorithm 2, lines 15-19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NoMatchError
from repro.keywords.query import KeywordQuery, Term
from repro.keywords.tags import Tag, TagKind
from repro.observability import NULL_TRACER
from repro.orm.graph import OrmSchemaGraph
from repro.relational.database import Database
from repro.relational.schema import RelationSchema
from repro.relational.types import DataType


@dataclass(frozen=True)
class ValueHit:
    """A value-level match: the logical relation/attribute containing the
    phrase and how many distinct objects (by identifier) carry it.

    ``value`` is set for exact numeric matches (the parsed number)."""

    relation: str
    attribute: str
    distinct_objects: int
    value: object = None


def name_match_score(term: str, name: str) -> Optional[float]:
    """Score a term against a metadata name.

    Exact (case-insensitive) matches score 1.0, singular/plural variants
    0.9, prefix matches of at least four characters 0.7 (so ``order`` finds
    the denormalized ``Ordering`` relation), and containment matches 0.6
    (``proceeding`` finds ``EditorProceeding``).  Returns None for no match.
    """
    t = term.lower()
    n = name.lower()
    if t == n:
        return 1.0
    if t + "s" == n or n + "s" == t:
        return 0.9
    if len(t) >= 4 and n.startswith(t):
        return 0.7
    if len(t) >= 4 and t in n:
        return 0.6
    # abbreviated attribute names: 'supplier' ~ 'suppkey', 'proceeding' ~
    # 'procid' share a long common prefix covering most of the name
    common = 0
    for a, b in zip(t, n):
        if a != b:
            break
        common += 1
    if common >= 4 and common * 2 >= len(n):
        return 0.5
    return None


class Catalog:
    """Base catalog: logical relations + value probing.

    ``graph`` is the ORM schema graph over the logical schema.  Subclasses
    provide :meth:`value_matches`.
    """

    def __init__(self, graph: OrmSchemaGraph) -> None:
        self.graph = graph

    def relations(self) -> Iterable[RelationSchema]:
        return iter(self.graph.schema)

    def value_matches(self, phrase: str) -> List[ValueHit]:
        raise NotImplementedError

    def distinct_object_count(
        self, relation: str, attribute: str, phrase: str
    ) -> int:
        """Distinct identifiers among tuples whose attribute contains the
        phrase (used again by pattern disambiguation)."""
        raise NotImplementedError

    def value_completions(self, prefix: str, limit: int = 10) -> List[str]:
        """Indexed value tokens completing *prefix* (for suggestions)."""
        return []


class NormalizedCatalog(Catalog):
    """Catalog over a normalized database: logical schema == stored schema."""

    def __init__(self, database: Database, graph: Optional[OrmSchemaGraph] = None) -> None:
        super().__init__(graph or OrmSchemaGraph(database.schema))
        self.database = database

    def value_matches(self, phrase: str) -> List[ValueHit]:
        hits: List[ValueHit] = []
        for match in self.database.text_index.match_phrase(phrase):
            count = self._distinct_ids(match.relation, match.row_positions)
            hits.append(ValueHit(match.relation, match.attribute, count))
        hits.extend(self._numeric_matches(phrase))
        return hits

    def _numeric_matches(self, phrase: str) -> List[ValueHit]:
        hits: List[ValueHit] = []
        for match in self.database.numeric_index.match_number(phrase):
            count = self._distinct_ids(match.relation, match.row_positions)
            value = float(phrase)
            if value.is_integer():
                value = int(value)
            hits.append(
                ValueHit(match.relation, match.attribute, count, value=value)
            )
        return hits

    def _distinct_ids(self, relation: str, row_positions: Set[int]) -> int:
        table = self.database.table(relation)
        key_idx = [
            table.schema.column_index(col) for col in table.schema.primary_key
        ]
        return len(
            {tuple(table.rows[pos][i] for i in key_idx) for pos in row_positions}
        )

    def value_completions(self, prefix: str, limit: int = 10) -> List[str]:
        return self.database.text_index.tokens_with_prefix(prefix, limit)

    def distinct_object_count(
        self, relation: str, attribute: str, phrase: str
    ) -> int:
        positions = self.database.text_index.positions_for_contains(
            relation, attribute, phrase
        )
        if positions is not None:
            return self._distinct_ids(relation, positions)
        # non-text attribute (or tokenless phrase): fall back to a scan
        table = self.database.table(relation)
        attr_idx = table.schema.column_index(attribute)
        key_idx = [
            table.schema.column_index(col) for col in table.schema.primary_key
        ]
        needle = phrase.lower()
        ids = {
            tuple(row[i] for i in key_idx)
            for row in table.rows
            if row[attr_idx] is not None and needle in str(row[attr_idx]).lower()
        }
        return len(ids)


class TermMatcher:
    """Produces the tag set of every basic term of a query."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def match_term(self, term: Term) -> List[Tag]:
        """All tags for one basic term, metadata matches first."""
        tags: List[Tag] = []
        if not term.quoted:
            tags.extend(self._relation_tags(term))
            tags.extend(self._attribute_tags(term))
        tags.extend(self._value_tags(term))
        return tags

    def match_query(self, query: KeywordQuery, tracer=NULL_TRACER) -> Dict[int, List[Tag]]:
        """Tags per basic-term position; raises when a term matches nothing."""
        result: Dict[int, List[Tag]] = {}
        for term in query.basic_terms:
            tags = self.match_term(term)
            if not tags:
                raise NoMatchError(
                    f"term {term.text!r} matches nothing in the database"
                )
            result[term.position] = tags
            tracer.count("terms_matched")
            tracer.count("tags_produced", len(tags))
        return result

    # ------------------------------------------------------------------
    # Tag producers
    # ------------------------------------------------------------------
    def _relation_tags(self, term: Term) -> List[Tag]:
        tags: List[Tag] = []
        for relation in self.catalog.relations():
            score = name_match_score(term.text, relation.name)
            if score is None:
                continue
            node = self.catalog.graph.node_of_relation(relation.name)
            tags.append(
                Tag(
                    term_position=term.position,
                    term_text=term.text,
                    kind=TagKind.RELATION,
                    node=node.name,
                    relation=relation.name,
                    exactness=score,
                )
            )
        tags.sort(key=lambda tag: (-tag.exactness, tag.relation))
        return tags

    def _attribute_tags(self, term: Term) -> List[Tag]:
        tags: List[Tag] = []
        for relation in self.catalog.relations():
            for column in relation.columns:
                score = name_match_score(term.text, column.name)
                if score is None:
                    continue
                node = self.catalog.graph.node_of_relation(relation.name)
                tags.append(
                    Tag(
                        term_position=term.position,
                        term_text=term.text,
                        kind=TagKind.ATTRIBUTE,
                        node=node.name,
                        relation=relation.name,
                        attribute=column.name,
                        exactness=score,
                    )
                )
        tags.sort(key=lambda tag: (-tag.exactness, tag.relation, tag.attribute or ""))
        return tags

    def _value_tags(self, term: Term) -> List[Tag]:
        tags: List[Tag] = []
        for hit in self.catalog.value_matches(term.text):
            node = self.catalog.graph.node_of_relation(hit.relation)
            tags.append(
                Tag(
                    term_position=term.position,
                    term_text=term.text,
                    kind=TagKind.VALUE,
                    node=node.name,
                    relation=hit.relation,
                    attribute=hit.attribute,
                    distinct_objects=hit.distinct_objects,
                    # a value interpretation yields to an exact metadata
                    # interpretation of the same term ({Lecturer George}:
                    # the Lecturer relation, not a value match on 'lecturer')
                    exactness=0.8,
                    value=hit.value,
                )
            )
        tags.sort(key=lambda tag: (tag.relation, tag.attribute or ""))
        return tags
