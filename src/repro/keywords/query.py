"""The extended keyword query language (Definition 1).

A query is a sequence of terms; each term is either a *basic term* (matching
a relation name, attribute name or tuple value) or an *operator*
(``MIN``/``MAX``/``AVG``/``SUM``/``COUNT``/``GROUPBY``).  The structural
constraints of Section 2 (plus the Section 3.2 relaxation allowing nested
aggregates) are enforced here; the match-dependent constraints — an
aggregate's operand must match an attribute name, COUNT/GROUPBY's operand a
relation or attribute name — are enforced during pattern annotation, where
match information exists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidQueryError
from repro.keywords.tokenizer import RawTerm, tokenize_query

AGGREGATE_OPERATORS = ("MIN", "MAX", "AVG", "SUM", "COUNT")
GROUPBY_OPERATOR = "GROUPBY"
ALL_OPERATORS = AGGREGATE_OPERATORS + (GROUPBY_OPERATOR,)


class TermKind(enum.Enum):
    BASIC = "basic"
    AGGREGATE = "aggregate"
    GROUPBY = "groupby"


@dataclass(frozen=True)
class Term:
    """One classified query term."""

    text: str
    kind: TermKind
    quoted: bool
    position: int

    @property
    def is_operator(self) -> bool:
        return self.kind is not TermKind.BASIC

    @property
    def operator(self) -> str:
        """Canonical operator name (only valid for operator terms)."""
        if not self.is_operator:
            raise InvalidQueryError(f"term {self.text!r} is not an operator")
        return self.text.upper()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f'"{self.text}"' if self.quoted else self.text


@dataclass(frozen=True)
class OperatorApplication:
    """A (possibly nested) operator chain applied to one basic term.

    ``chain`` lists the aggregate operators outermost-first; ``groupby`` is
    True when the innermost operator is GROUPBY.  For
    ``{MAX COUNT order GROUPBY nation}`` the term ``order`` carries
    ``chain=("MAX", "COUNT")`` and the term ``nation`` carries
    ``chain=(), groupby=True``.
    """

    target_position: int  # the basic term the chain applies to
    chain: Tuple[str, ...]
    groupby: bool


class KeywordQuery:
    """A parsed, structurally validated keyword query."""

    def __init__(self, raw: str) -> None:
        self.raw = raw
        self.terms: List[Term] = [self._classify(term) for term in tokenize_query(raw)]
        self._validate()
        self.applications: List[OperatorApplication] = self._bind_operators()

    @staticmethod
    def _classify(raw: RawTerm) -> Term:
        upper = raw.text.upper()
        if not raw.quoted and upper in AGGREGATE_OPERATORS:
            return Term(raw.text, TermKind.AGGREGATE, raw.quoted, raw.position)
        if not raw.quoted and upper == GROUPBY_OPERATOR:
            return Term(raw.text, TermKind.GROUPBY, raw.quoted, raw.position)
        return Term(raw.text, TermKind.BASIC, raw.quoted, raw.position)

    def _validate(self) -> None:
        last = self.terms[-1]
        if last.is_operator:
            raise InvalidQueryError(
                f"the last term {last.text!r} cannot be an aggregate or GROUPBY"
            )
        for term, successor in zip(self.terms, self.terms[1:]):
            if term.kind is TermKind.GROUPBY and successor.is_operator:
                raise InvalidQueryError(
                    "GROUPBY must be followed by a relation or attribute name, "
                    f"not the operator {successor.text!r}"
                )
            if (
                term.kind is TermKind.AGGREGATE
                and successor.kind is TermKind.GROUPBY
            ):
                raise InvalidQueryError(
                    f"aggregate {term.text!r} cannot be applied to GROUPBY"
                )

    def _bind_operators(self) -> List[OperatorApplication]:
        """Attach each operator (chain) to its operand basic term."""
        applications: List[OperatorApplication] = []
        i = 0
        terms = self.terms
        while i < len(terms):
            term = terms[i]
            if term.kind is TermKind.AGGREGATE:
                chain: List[str] = []
                while terms[i].kind is TermKind.AGGREGATE:
                    chain.append(terms[i].operator)
                    i += 1
                # _validate guarantees an aggregate chain never ends at the
                # query end nor runs into GROUPBY
                target = terms[i]
                applications.append(
                    OperatorApplication(target.position, tuple(chain), groupby=False)
                )
                i += 1
            elif term.kind is TermKind.GROUPBY:
                target = terms[i + 1]
                applications.append(
                    OperatorApplication(target.position, (), groupby=True)
                )
                i += 2
            else:
                i += 1
        return applications

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def basic_terms(self) -> List[Term]:
        return [term for term in self.terms if not term.is_operator]

    @property
    def operators(self) -> List[Term]:
        return [term for term in self.terms if term.is_operator]

    @property
    def has_aggregates(self) -> bool:
        return any(term.kind is TermKind.AGGREGATE for term in self.terms)

    def application_for(self, position: int) -> Optional[OperatorApplication]:
        """The operator application targeting the term at *position*."""
        for application in self.applications:
            if application.target_position == position:
                return application
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeywordQuery({self.raw!r})"
