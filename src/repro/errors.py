"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Sub-hierarchies mirror the package layout: schema
and storage errors, SQL language errors, execution errors, and keyword-query
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """Invalid schema definition (duplicate columns, bad key, dangling FK)."""


class IntegrityError(ReproError):
    """A data modification violated a schema constraint."""


class DuplicateKeyError(IntegrityError):
    """A row insertion violated a primary-key or unique constraint."""


class ForeignKeyError(IntegrityError):
    """A row insertion referenced a non-existent parent key."""


class TypeMismatchError(IntegrityError):
    """A value could not be coerced to its column's declared type."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the database."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""


class SqlError(ReproError):
    """Base class for SQL language errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SqlExecutionError(SqlError):
    """The SQL statement is well-formed but cannot be executed."""


class SqlRenderError(SqlError):
    """The SQL AST cannot be rendered as text for the target dialect."""


class BackendError(ReproError):
    """An execution backend failed to load data or run a statement."""


class KeywordQueryError(ReproError):
    """Base class for keyword-query errors."""


class InvalidQueryError(KeywordQueryError):
    """The keyword query violates the term constraints of Definition 1."""


class NoMatchError(KeywordQueryError):
    """A basic term matched nothing in the database."""


class NoPatternError(KeywordQueryError):
    """No connected query pattern exists for the query's tags."""


class UnsupportedQueryError(KeywordQueryError):
    """Raised by the SQAK baseline for queries it cannot handle (N.A.)."""


class NormalizationError(ReproError):
    """Functional-dependency or normalization failure."""


class DeadlineExceededError(ReproError):
    """A query was cancelled at a checkpoint: its deadline passed or its
    :class:`~repro.cancellation.CancellationToken` was cancelled."""


class StorageError(ReproError):
    """Disk-storage failure: corrupt page, exhausted buffer pool, or an
    incomplete/unreadable materialization directory."""


class ServiceError(ReproError):
    """Base class for query-service (serving-layer) errors."""


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request: the bounded queue is full
    (HTTP 429)."""


class ServiceUnavailableError(ServiceError):
    """The dataset's circuit breaker is open: recent requests kept
    failing, so the service fails fast until a probe succeeds (HTTP 503)."""


class StaticAnalysisError(ReproError):
    """Strict-mode analysis found error-severity diagnostics.

    Carries the offending diagnostics in :attr:`diagnostics` so callers can
    render them (the CLI does, the test corpus asserts on their codes).
    """

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)
