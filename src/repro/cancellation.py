"""Cooperative cancellation and per-request deadlines.

The serving layer (:mod:`repro.service`) must be able to abort a slow
query *while it runs* — a cross join that exploded, a pathological
pattern — instead of letting it hog a worker thread until completion.
Python threads cannot be killed, so cancellation is cooperative: the
executor's row loops poll a :class:`CancellationToken` at checkpoints
(operator boundaries plus a strided check inside the join loops) and
raise :class:`~repro.errors.DeadlineExceededError` the moment the token
is cancelled or its deadline passes.

The token travels *ambiently* rather than through every signature: a
caller wraps work in :func:`cancellation_scope` and instrumented code
asks :func:`current_token` for the active token of its thread.  Outside
any scope that is :data:`NULL_TOKEN`, whose checks are no-ops, so the
library API (``engine.search(...)`` etc.) is completely unaffected when
no deadline is in play.

Deadlines use the monotonic clock (:func:`time.perf_counter`), never
wall time — the same discipline as the tracer.

This module is deliberately at the bottom of the layering: it imports
nothing but the stdlib and :mod:`repro.errors`, so every layer
(relational executor, engine, service) may use it.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Optional

from contextlib import contextmanager

from repro.errors import DeadlineExceededError

__all__ = [
    "CHECK_STRIDE",
    "CancellationToken",
    "NULL_TOKEN",
    "cancellation_scope",
    "current_token",
]

#: Row-loop polling stride: hot loops call ``token.check()`` once every
#: ``CHECK_STRIDE`` iterations (``if not (i & (CHECK_STRIDE - 1)): ...``)
#: so the disabled-mode overhead stays far below the observability
#: budget while a runaway join still aborts within a few thousand rows.
CHECK_STRIDE = 1024


class CancellationToken:
    """One request's cancellation state: an explicit flag plus an
    optional monotonic-clock deadline.

    ``check()`` raises :class:`DeadlineExceededError` once either trips;
    it is safe to call from any thread, and cheap enough for operator
    boundaries (one flag read, one clock read).
    """

    __slots__ = ("_deadline", "_cancelled", "reason")

    def __init__(
        self, deadline: Optional[float] = None, reason: str = "cancelled"
    ) -> None:
        self._deadline = deadline
        self._cancelled = False
        self.reason = reason

    @classmethod
    def with_timeout(cls, seconds: float, reason: str = "deadline") -> "CancellationToken":
        """A token that expires *seconds* from now."""
        return cls(deadline=time.perf_counter() + seconds, reason=reason)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def cancel(self, reason: Optional[str] = None) -> None:
        """Trip the token explicitly (idempotent, thread-safe: a single
        boolean store under the GIL)."""
        if reason is not None:
            self.reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def deadline(self) -> Optional[float]:
        """The monotonic-clock deadline, or None for cancel-only tokens."""
        return self._deadline

    def expired(self) -> bool:
        """True once the token is cancelled or past its deadline."""
        if self._cancelled:
            return True
        return self._deadline is not None and time.perf_counter() >= self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (clamped at 0.0), or None."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.perf_counter())

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if the token has tripped."""
        if self._cancelled:
            raise DeadlineExceededError(f"query cancelled ({self.reason})")
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            raise DeadlineExceededError(
                f"query exceeded its deadline ({self.reason})"
            )


class _NullToken:
    """The always-live token: every check is a no-op.

    A distinct class (rather than a ``CancellationToken`` with no
    deadline) so the hot-path ``check()`` costs a single empty method
    call, mirroring :class:`repro.observability.NullTracer`.
    """

    __slots__ = ()

    reason = "null"
    cancelled = False
    deadline = None

    def cancel(self, reason: Optional[str] = None) -> None:  # pragma: no cover
        raise TypeError("NULL_TOKEN cannot be cancelled; create a CancellationToken")

    def expired(self) -> bool:
        return False

    def remaining(self) -> Optional[float]:
        return None

    def check(self) -> None:
        return None


NULL_TOKEN = _NullToken()

_SCOPE = threading.local()


def current_token():
    """The active token of the calling thread (:data:`NULL_TOKEN` when no
    :func:`cancellation_scope` is open)."""
    return getattr(_SCOPE, "token", NULL_TOKEN)


@contextmanager
def cancellation_scope(token: CancellationToken) -> Iterator[CancellationToken]:
    """Make *token* the calling thread's active token for the block.

    Scopes nest: the previous token is restored on exit, so a service
    worker can tighten a deadline around a sub-step without losing the
    request-level one.
    """
    previous = getattr(_SCOPE, "token", NULL_TOKEN)
    _SCOPE.token = token
    try:
        yield token
    finally:
        _SCOPE.token = previous
