"""Row storage for one relation.

Rows are stored as tuples in insertion order.  The table enforces primary-key
uniqueness and type coercion on insert; foreign-key enforcement happens at
the :class:`~repro.relational.database.Database` level because it needs the
parent table.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DuplicateKeyError, SchemaError
from repro.relational.schema import RelationSchema
from repro.relational.types import coerce

Row = Tuple[Any, ...]


class Table:
    """In-memory storage of one relation's rows."""

    def __init__(self, schema: RelationSchema, enforce_key: bool = True) -> None:
        self.schema = schema
        self.enforce_key = enforce_key
        self._rows: List[Row] = []
        self._key_indices = tuple(schema.column_index(col) for col in schema.primary_key)
        self._key_set: Dict[Row, int] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> Row:
        """Insert one row (sequence ordered like the schema columns)."""
        if len(row) != len(self.schema.columns):
            raise SchemaError(
                f"{self.schema.name}: expected {len(self.schema.columns)} values, "
                f"got {len(row)}"
            )
        coerced = tuple(
            coerce(value, col.dtype) for value, col in zip(row, self.schema.columns)
        )
        if self.enforce_key:
            key = tuple(coerced[i] for i in self._key_indices)
            if any(part is None for part in key):
                raise DuplicateKeyError(
                    f"{self.schema.name}: NULL in primary key {self.schema.primary_key}"
                )
            if key in self._key_set:
                raise DuplicateKeyError(
                    f"{self.schema.name}: duplicate primary key {key!r}"
                )
            self._key_set[key] = len(self._rows)
        self._rows.append(coerced)
        return coerced

    def insert_dict(self, values: Dict[str, Any]) -> Row:
        """Insert one row from a column-name -> value mapping.

        Missing columns become NULL; unknown columns raise.
        """
        known = set(self.schema.column_names)
        unknown = set(values) - known
        if unknown:
            raise SchemaError(
                f"{self.schema.name}: unknown columns {sorted(unknown)}"
            )
        return self.insert([values.get(name) for name in self.schema.column_names])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> List[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def get_by_key(self, key: Tuple[Any, ...]) -> Optional[Row]:
        """Look up a row by primary key (only when ``enforce_key``)."""
        position = self._key_set.get(tuple(key))
        if position is None:
            return None
        return self._rows[position]

    def column_values(self, column: str) -> List[Any]:
        """All values of *column* in row order (including duplicates/NULLs)."""
        idx = self.schema.column_index(column)
        return [row[idx] for row in self._rows]

    def distinct_key_count(self, columns: Sequence[str]) -> int:
        """Number of distinct value combinations over *columns*."""
        indices = [self.schema.column_index(col) for col in columns]
        return len({tuple(row[i] for i in indices) for row in self._rows})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"
