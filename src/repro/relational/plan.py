"""Compiled physical query plans.

A :class:`CompiledPlan` is built once from a :class:`~repro.sql.ast.Select`
and executed many times.  Compilation does everything that is independent of
the data up front:

* every WHERE conjunct is classified (single-table pushdown vs. join
  predicate vs. residual filter) and its referenced aliases are resolved
  once — the interpreted executor re-derives them on every execution;
* pushed-down ``contains`` and equality predicates are matched to an index
  strategy (:class:`~repro.relational.index.InvertedIndex`,
  :class:`~repro.relational.index.NumericIndex` or a per-table
  :class:`~repro.relational.index.HashIndex`) so scans start from index row
  positions instead of the full table;
* predicates, projections, GROUP BY keys and aggregate outputs are compiled
  into closures (:func:`~repro.relational.expressions.compile_scalar` and
  friends), eliminating the per-row AST walk and column re-resolution.

Join *order* is decided in one of two ways.  Without an optimizer (the
``optimizer="off"`` ablation, and direct ``CompiledPlan(...)``
construction) it stays a greedy runtime decision — smallest size product
first — exactly mirroring the interpreted executor.  When the executor
passes a cost-based optimizer (``repro.planner``, the default), its
:class:`PlanDecisions` are computed at compile time: a DP-chosen join
order (applied step by step in :meth:`CompiledPlan._join`, falling back
to the greedy order if the decisions ever stop matching the runtime
components), per-predicate index-vs-seq-scan choices, and per-operator
row estimates that :meth:`CompiledPlan.execute` pairs with actuals in
:attr:`CompiledPlan.last_run` (surfaced by ``--explain``).  Both modes
produce identical result *sets* — the semantics-equivalence tests run
every experiment query through both.  Executor-level caching and
invalidation (by rendered SQL and :attr:`Database.data_version`) live in
:class:`~repro.relational.executor.Executor`.
"""

from __future__ import annotations

import operator
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cancellation import CHECK_STRIDE, current_token
from repro.errors import SqlExecutionError
from repro.observability import NULL_TRACER
from repro.relational.algebra import (
    Rowset,
    cross_join,
    distinct,
    hash_join,
    null_safe_sort_key,
)
from repro.relational.database import Database
from repro.relational.expressions import (
    Binding,
    ColumnLabel,
    compile_aggregate,
    compile_predicate,
    compile_scalar,
)
from repro.relational.result import QueryResult
from repro.relational.types import DataType
from repro.sql.render import render_expr
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    Literal,
    Select,
    TableRef,
)

_TEXT_TYPES = (DataType.TEXT, DataType.DATE)
_NUMERIC_TYPES = (DataType.INT, DataType.FLOAT)


class IndexLookup:
    """How one pushed-down predicate is answered from an index.

    ``positions()`` returns candidate row positions (a superset of the
    matching rows for ``numeric-eq``, exact for the others) or None when the
    index cannot answer; the scan verifies candidates with the compiled
    predicate closures either way.  Results are memoized per data version.
    """

    __slots__ = (
        "kind",
        "table",
        "column",
        "value",
        "_cached",
        "_cached_version",
        "_lock",
    )

    def __init__(self, kind: str, table: str, column: str, value: Any) -> None:
        self.kind = kind  # 'contains' | 'numeric-eq' | 'hash-eq' | 'never'
        self.table = table
        self.column = column
        self.value = value
        self._cached: Optional[Set[int]] = None
        self._cached_version: Any = None
        # plans are shared across service workers via the executor's plan
        # cache; the memo write must be atomic with its version stamp
        self._lock = threading.Lock()

    def positions(self, database: Database) -> Optional[Set[int]]:
        version = database.data_version
        with self._lock:
            if self._cached_version == version:
                return self._cached
        if self.kind == "contains":
            found = database.text_index.positions_for_contains(
                self.table, self.column, self.value
            )
        elif self.kind == "numeric-eq":
            found = database.numeric_index.positions_for_value(
                self.table, self.column, self.value
            )
        elif self.kind == "hash-eq":
            found = database.hash_index(self.table, (self.column,)).positions(
                (self.value,)
            )
        else:  # 'never': comparison against NULL matches nothing
            found = set()
        with self._lock:
            self._cached = found
            self._cached_version = version
        return found

    def describe(self) -> str:
        if self.kind == "never":
            return "never (NULL comparison)"
        index_name = {
            "contains": "InvertedIndex",
            "numeric-eq": "NumericIndex",
            "hash-eq": "HashIndex",
        }[self.kind]
        return f"{index_name}[{self.table}.{self.column} ~ {self.value!r}]"


class _Pushed:
    """A single-scan predicate: compiled closure plus optional index path.

    ``use_lookup`` is the access-path switch: the cost-based optimizer
    sets it to False when a sequential scan beats the index probe (the
    closure verifies every row either way, so the choice is purely
    physical).  Without an optimizer it stays True — index whenever one
    exists, today's heuristic."""

    __slots__ = ("expr", "closure", "lookup", "use_lookup")

    def __init__(self, expr: Expr, closure, lookup: Optional[IndexLookup]) -> None:
        self.expr = expr
        self.closure = closure
        self.lookup = lookup
        self.use_lookup = True


class _TableScan:
    """Scan of one base table, with pushed-down predicates."""

    def __init__(self, item: TableRef, database: Database) -> None:
        table = database.table(item.table)
        self.table_name = item.table
        self.alias = item.alias
        self.schema = table.schema
        self.labels: Tuple[ColumnLabel, ...] = tuple(
            (item.alias, name) for name in table.schema.column_names
        )
        self.binding = Binding(self.labels)
        self.pushed: List[_Pushed] = []

    def push(self, expr: Expr, database: Database) -> None:
        self.pushed.append(
            _Pushed(
                expr,
                compile_predicate(expr, self.binding),
                self._index_strategy(expr),
            )
        )

    def _index_strategy(self, expr: Expr) -> Optional[IndexLookup]:
        """Match a pushed conjunct to an index, when sound.

        Gated on column/literal type agreement so the index path can never
        diverge from the interpreter (which may raise on mixed-type
        comparisons that a hash lookup would silently miss)."""
        if isinstance(expr, Contains):
            column = self._own_column(expr.column)
            if column is not None and self._dtype(column) in _TEXT_TYPES:
                return IndexLookup("contains", self.table_name, column, expr.phrase)
            return None
        if isinstance(expr, BinaryOp) and expr.op == "=":
            sides = (expr.left, expr.right)
            for ref, literal in (sides, sides[::-1]):
                if not isinstance(ref, ColumnRef) or not isinstance(literal, Literal):
                    continue
                column = self._own_column(ref)
                if column is None:
                    continue
                value = literal.value
                if value is None:
                    return IndexLookup("never", self.table_name, column, None)
                dtype = self._dtype(column)
                if dtype in _NUMERIC_TYPES and isinstance(
                    value, (int, float)
                ) and not isinstance(value, bool):
                    return IndexLookup(
                        "numeric-eq", self.table_name, column, value
                    )
                if dtype in _TEXT_TYPES and isinstance(value, str):
                    return IndexLookup("hash-eq", self.table_name, column, value)
                return None
        return None

    def _own_column(self, expr: Expr) -> Optional[str]:
        """The scan's column name referenced by *expr*, or None."""
        if not isinstance(expr, ColumnRef):
            return None
        if expr.qualifier is not None and expr.qualifier != self.alias:
            return None
        if not self.schema.has_column(expr.name):
            for name in self.schema.column_names:
                if name.lower() == expr.name.lower():
                    return name
            return None
        return expr.name

    def _dtype(self, column: str) -> DataType:
        return self.schema.column(column).dtype

    def execute(self, database: Database, tracer=NULL_TRACER) -> Rowset:
        current_token().check()
        table = database.table(self.table_name)
        rows = table.rows
        positions: Optional[Set[int]] = None
        lookups = 0
        for pred in self.pushed:
            if pred.lookup is None or not pred.use_lookup:
                continue
            found = pred.lookup.positions(database)
            if found is None:
                continue
            lookups += 1
            positions = found if positions is None else positions & found
        if positions is not None:
            tracer.count("index_scans", lookups)
            tracer.count("rows_skipped_by_index", len(rows) - len(positions))
            selected: List[Tuple[Any, ...]] = [rows[pos] for pos in sorted(positions)]
        else:
            selected = list(rows)
        tracer.count("rows_scanned", len(selected))
        for pred in self.pushed:
            before = len(selected)
            fn = pred.closure
            selected = [row for row in selected if fn(row)]
            tracer.count("predicates_pushed")
            tracer.count("rows_filtered", before - len(selected))
        return Rowset(self.binding, selected)

    def describe(
        self, indent: str = "", estimate: Optional[float] = None,
        actual: Optional[int] = None,
    ) -> List[str]:
        header = f"{indent}scan {self.table_name} AS {self.alias}"
        header += _rows_note(estimate, actual)
        lines = [header]
        for pred in self.pushed:
            if pred.lookup is not None and not pred.use_lookup:
                via = f"compiled filter (seq scan; skipped {pred.lookup.describe()})"
            elif pred.lookup is not None:
                via = pred.lookup.describe()
            else:
                via = "compiled filter"
            lines.append(f"{indent}  push {render_expr(pred.expr)} via {via}")
        return lines


class _DerivedScan:
    """A derived table: a nested compiled sub-plan."""

    def __init__(
        self,
        item: DerivedTable,
        database: Database,
        use_hash_joins: bool,
        optimizer: Any = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.alias = item.alias
        self.subplan = CompiledPlan(
            item.select,
            database,
            use_hash_joins=use_hash_joins,
            optimizer=optimizer,
            tracer=tracer,
        )
        self.labels: Tuple[ColumnLabel, ...] = tuple(
            (item.alias, name) for name in self.subplan.output_columns
        )
        self.binding = Binding(self.labels)
        self.pushed: List[_Pushed] = []

    def push(self, expr: Expr, database: Database) -> None:
        self.pushed.append(_Pushed(expr, compile_predicate(expr, self.binding), None))

    def execute(self, database: Database, tracer=NULL_TRACER) -> Rowset:
        inner = self.subplan.execute(tracer)
        selected = inner.rows
        for pred in self.pushed:
            before = len(selected)
            fn = pred.closure
            selected = [row for row in selected if fn(row)]
            tracer.count("predicates_pushed")
            tracer.count("rows_filtered", before - len(selected))
        return Rowset(self.binding, selected)

    def describe(
        self, indent: str = "", estimate: Optional[float] = None,
        actual: Optional[int] = None,
    ) -> List[str]:
        lines = [f"{indent}derived {self.alias}{_rows_note(estimate, actual)}:"]
        lines.extend(self.subplan.describe(indent + "  "))
        for pred in self.pushed:
            lines.append(
                f"{indent}  push {render_expr(pred.expr)} via compiled filter"
            )
        return lines


def _rows_note(estimate: Optional[float], actual: Optional[int]) -> str:
    """`` (est≈N, actual M rows)`` suffix for explain lines, when known."""
    if estimate is None:
        return ""
    note = f" (est≈{estimate:,.0f}"
    if actual is not None:
        note += f", actual {actual:,}"
    return note + " rows)"


class Observation:
    """Estimated vs. actual output rows of one executed operator."""

    __slots__ = ("label", "estimated", "actual")

    def __init__(self, label: str, estimated: float, actual: int) -> None:
        self.label = label
        self.estimated = estimated
        self.actual = actual

    @property
    def q_error(self) -> float:
        """``max(est/actual, actual/est)`` with both floored at one row."""
        estimated = max(1.0, float(self.estimated))
        actual = max(1.0, float(self.actual))
        return max(estimated / actual, actual / estimated)


class PlanRun:
    """Per-operator estimated-vs-actual rows for one plan execution.

    Stored on :attr:`CompiledPlan.last_run` after every optimized
    execution; the plan-quality benchmark and ``--explain`` read it."""

    __slots__ = ("operators",)

    def __init__(self) -> None:
        self.operators: List[Observation] = []

    def record(self, label: str, estimated: float, actual: int) -> None:
        self.operators.append(Observation(label, estimated, actual))

    def actual_for(self, label: str) -> Optional[int]:
        for observation in self.operators:
            if observation.label == label:
                return observation.actual
        return None

    def q_errors(self) -> List[float]:
        return [observation.q_error for observation in self.operators]


class _Conjunct:
    """A WHERE conjunct spanning several FROM items, with its alias set and
    equi-join shape resolved at compile time."""

    __slots__ = (
        "expr",
        "aliases",
        "is_equi",
        "left_ref",
        "right_ref",
        "left_alias",
        "_closures",
    )

    def __init__(
        self,
        expr: Expr,
        aliases: frozenset,
        is_equi: bool,
        left_ref: Optional[ColumnRef] = None,
        right_ref: Optional[ColumnRef] = None,
        left_alias: Optional[str] = None,
    ) -> None:
        self.expr = expr
        self.aliases = aliases
        self.is_equi = is_equi
        self.left_ref = left_ref
        self.right_ref = right_ref
        self.left_alias = left_alias
        self._closures: Dict[Tuple[ColumnLabel, ...], Callable] = {}

    def closure_for(self, binding: Binding):
        key = binding.labels
        fn = self._closures.get(key)
        if fn is None:
            fn = self._closures.setdefault(key, compile_predicate(self.expr, binding))
        return fn


class _Component:
    """A connected group of FROM items during join execution."""

    __slots__ = ("aliases", "rowset")

    def __init__(self, aliases: Set[str], rowset: Rowset) -> None:
        self.aliases = aliases
        self.rowset = rowset


class CompiledPlan:
    """A reusable physical plan for one ``Select`` over one database."""

    def __init__(
        self,
        select: Select,
        database: Database,
        use_hash_joins: bool = True,
        optimizer: Any = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.select = select
        self.database = database
        self.use_hash_joins = use_hash_joins
        # duck-typed repro.planner.Optimizer (this module must not import
        # upper layers); None keeps the greedy heuristics byte-for-byte
        self._optimizer = optimizer if use_hash_joins else None
        self._compile_tracer = tracer
        self.decisions: Any = None
        self.last_run: Optional[PlanRun] = None
        self.output_columns: List[str] = [
            item.output_name(default=f"col{i + 1}")
            for i, item in enumerate(select.items)
        ]
        self._output_binding = Binding([(None, name) for name in self.output_columns])
        self._aggregated = select.has_aggregates() or bool(select.group_by)
        self.scans: List[Any] = []
        self.pending: List[_Conjunct] = []
        self._build_scans()
        self._alias_owners = self._column_owner_map()
        self._classify_conjuncts()
        self._order_keys = [
            (self._compile_order_value(item.expr), item.descending)
            for item in select.order_by
        ]
        # lazy per-binding caches; bindings after joins depend on the
        # runtime join order, so these are keyed by the binding's labels
        self._projector_cache: Dict[Tuple[ColumnLabel, ...], Callable] = {}
        self._group_key_cache: Dict[Tuple[ColumnLabel, ...], Callable] = {}
        self._aggregate_cache: Dict[Tuple[ColumnLabel, ...], List[Callable]] = {}
        if self._optimizer is not None:
            self.decisions = self._optimizer.decide(self, tracer)
            self._apply_index_choices()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _build_scans(self) -> None:
        if not self.select.from_items:
            raise SqlExecutionError("FROM clause is empty")
        seen: Set[str] = set()
        for item in self.select.from_items:
            if item.alias in seen:
                raise SqlExecutionError(f"duplicate alias {item.alias!r} in FROM")
            seen.add(item.alias)
            if isinstance(item, TableRef):
                self.scans.append(_TableScan(item, self.database))
            elif isinstance(item, DerivedTable):
                self.scans.append(
                    _DerivedScan(
                        item,
                        self.database,
                        self.use_hash_joins,
                        optimizer=self._optimizer,
                        tracer=self._compile_tracer,
                    )
                )
            else:  # pragma: no cover - defensive
                raise SqlExecutionError(f"unknown FROM item {item!r}")

    def _column_owner_map(self) -> Dict[str, List[str]]:
        """lowercased column name -> aliases providing it (for resolving
        unqualified references, mirroring the interpreted planner)."""
        owners: Dict[str, List[str]] = {}
        for scan in self.scans:
            for alias, name in scan.labels:
                owners.setdefault(name.lower(), []).append(alias)
        return owners

    def _aliases_of(self, expr: Expr) -> frozenset:
        aliases: Set[str] = set()
        for node in expr.walk():
            if not isinstance(node, ColumnRef):
                continue
            aliases.add(self._alias_of_ref(node))
        return frozenset(aliases)

    def _alias_of_ref(self, ref: ColumnRef) -> str:
        if ref.qualifier is not None:
            return ref.qualifier
        owners = set(self._alias_owners.get(ref.name.lower(), ()))
        if not owners:
            raise SqlExecutionError(f"unknown column {ref}")
        if len(owners) > 1:
            raise SqlExecutionError(f"ambiguous column {ref}")
        return next(iter(owners))

    def _classify_conjuncts(self) -> None:
        scans_by_alias = {scan.alias: scan for scan in self.scans}
        for expr in self.select.where_conjuncts():
            aliases = self._aliases_of(expr)
            if len(aliases) <= 1:
                owner = (
                    scans_by_alias.get(next(iter(aliases)))
                    if aliases
                    else self.scans[0]  # constant predicate: first scan,
                    # as in the interpreted path
                )
                if owner is not None:
                    owner.push(expr, self.database)
                    continue
                # unknown qualifier: leave pending; fails per-row at the
                # end of the join phase, like the interpreter
                self.pending.append(_Conjunct(expr, aliases, False))
                continue
            is_equi = (
                isinstance(expr, BinaryOp)
                and expr.op == "="
                and isinstance(expr.left, ColumnRef)
                and isinstance(expr.right, ColumnRef)
            )
            if is_equi:
                assert isinstance(expr, BinaryOp)
                left_ref, right_ref = expr.left, expr.right
                self.pending.append(
                    _Conjunct(
                        expr,
                        aliases,
                        True,
                        left_ref,
                        right_ref,
                        self._alias_of_ref(left_ref),
                    )
                )
            else:
                self.pending.append(_Conjunct(expr, aliases, False))

    def _apply_index_choices(self) -> None:
        """Turn the optimizer's access-path choices into scan behavior."""
        for scan in self.scans:
            decision = self.decisions.scans.get(scan.alias)
            if decision is None:
                continue
            for pred, choice in zip(scan.pushed, decision.index_choices):
                if choice is False and pred.lookup is not None:
                    pred.use_lookup = False

    @property
    def compiled_predicates(self) -> int:
        """Number of predicate closures compiled into this plan (pushed +
        pending, including nested sub-plans)."""
        total = len(self.pending)
        for scan in self.scans:
            total += len(scan.pushed)
            if isinstance(scan, _DerivedScan):
                total += scan.subplan.compiled_predicates
        return total

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, tracer=NULL_TRACER) -> QueryResult:
        # cancellation checkpoints mirror the interpreted executor: polled
        # at operator boundaries here and strided inside the algebra join
        # loops, so deadlines from repro.service abort a plan mid-flight
        token = current_token()
        token.check()
        run = PlanRun() if self.decisions is not None else None
        components = []
        for scan in self.scans:
            rowset = scan.execute(self.database, tracer)
            if run is not None:
                decision = self.decisions.scans.get(scan.alias)
                if decision is not None:
                    run.record(f"scan {scan.alias}", decision.est_rows, len(rowset))
            components.append(_Component({scan.alias}, rowset))
        pending = list(self.pending)
        pending = self._apply_pending(components, pending, tracer)
        merged = self._join(components, pending, tracer, run)
        token.check()
        result = self._project(merged.rowset, tracer)
        if run is not None:
            run.record("output", self.decisions.est_output, len(result.rows))
            # single reference assignment: racing executions each publish
            # a complete PlanRun; readers see one or the other
            self.last_run = run
            tracer.count("planner_runs_observed")
        return result

    def _apply_pending(
        self,
        components: List[_Component],
        pending: List[_Conjunct],
        tracer,
    ) -> List[_Conjunct]:
        remaining: List[_Conjunct] = []
        for conjunct in pending:
            owner = None
            for component in components:
                if conjunct.aliases <= component.aliases:
                    owner = component
                    break
            if owner is not None:
                fn = conjunct.closure_for(owner.rowset.binding)
                before = len(owner.rowset)
                owner.rowset = Rowset(
                    owner.rowset.binding,
                    [row for row in owner.rowset.rows if fn(row)],
                )
                tracer.count("predicates_pushed")
                tracer.count("rows_filtered", before - len(owner.rowset))
            else:
                remaining.append(conjunct)
        return remaining

    def _join(
        self,
        components: List[_Component],
        pending: List[_Conjunct],
        tracer,
        run: Optional[PlanRun] = None,
    ) -> _Component:
        token = current_token()
        steps: List[Any] = []
        if self.decisions is not None and self.use_hash_joins:
            steps = list(self.decisions.join_steps)
        while len(components) > 1:
            token.check()
            pair = None
            step = None
            if steps:
                candidate = steps.pop(0)
                pair = self._find_step_pair(components, candidate)
                if pair is None:
                    # the decided order no longer matches the runtime
                    # components: abandon it, fall back to the greedy order
                    steps = []
                    tracer.count("planner_step_fallbacks")
                else:
                    step = candidate
                    tracer.count("planner_steps_applied")
            if pair is None and self.use_hash_joins:
                pair = self._pick_join_pair(components, pending)
            if pair is None:
                components.sort(key=lambda component: len(component.rowset))
                left, right = components[0], components[1]
                merged_rowset = cross_join(left.rowset, right.rowset)
                merged = _Component(left.aliases | right.aliases, merged_rowset)
                components = [merged] + components[2:]
                tracer.count("cross_joins")
                tracer.count("cross_join_rows", len(merged_rowset))
            else:
                left, right = pair
                merged = self._hash_join_pair(left, right, pending)
                components = [
                    component
                    for component in components
                    if component is not left and component is not right
                ]
                components.append(merged)
                tracer.count("hash_joins")
                tracer.count("hash_join_rows", len(merged.rowset))
            pending = self._apply_pending(components, pending, tracer)
            if run is not None and step is not None:
                # measured after residual predicates, like the estimate
                run.record(
                    f"join {step.describe()}", step.est_rows, len(merged.rowset)
                )
        if pending:
            only = components[0]
            binding = only.rowset.binding
            for conjunct in pending:
                fn = conjunct.closure_for(binding)
                only.rowset = Rowset(
                    binding, [row for row in only.rowset.rows if fn(row)]
                )
        return components[0]

    @staticmethod
    def _find_step_pair(
        components: List[_Component], step: Any
    ) -> Optional[Tuple[_Component, _Component]]:
        """The component pair a decided join step names, by exact alias-set
        match — or None when the decisions went stale."""
        left = right = None
        for component in components:
            if component.aliases == step.left:
                left = component
            elif component.aliases == step.right:
                right = component
        if left is None or right is None:
            return None
        return (left, right)

    def _pick_join_pair(
        self, components: List[_Component], pending: List[_Conjunct]
    ) -> Optional[Tuple[_Component, _Component]]:
        best: Optional[Tuple[_Component, _Component]] = None
        best_cost: Optional[int] = None
        for conjunct in pending:
            if not conjunct.is_equi:
                continue
            touched = [
                component
                for component in components
                if conjunct.aliases & component.aliases
            ]
            if len(touched) != 2:
                continue
            cost = len(touched[0].rowset) * len(touched[1].rowset)
            if best_cost is None or cost < best_cost:
                best = (touched[0], touched[1])
                best_cost = cost
        return best

    def _hash_join_pair(
        self, left: _Component, right: _Component, pending: List[_Conjunct]
    ) -> _Component:
        left_positions: List[int] = []
        right_positions: List[int] = []
        used: List[_Conjunct] = []
        for conjunct in pending:
            if not conjunct.is_equi:
                continue
            if not (conjunct.aliases & left.aliases and conjunct.aliases & right.aliases):
                continue
            if not conjunct.aliases <= (left.aliases | right.aliases):
                continue
            if conjunct.left_alias in left.aliases:
                left_positions.append(left.rowset.binding.resolve(conjunct.left_ref))
                right_positions.append(right.rowset.binding.resolve(conjunct.right_ref))
            else:
                left_positions.append(left.rowset.binding.resolve(conjunct.right_ref))
                right_positions.append(right.rowset.binding.resolve(conjunct.left_ref))
            used.append(conjunct)
        for conjunct in used:
            pending.remove(conjunct)
        joined = hash_join(left.rowset, right.rowset, left_positions, right_positions)
        return _Component(left.aliases | right.aliases, joined)

    # ------------------------------------------------------------------
    # Projection / grouping
    # ------------------------------------------------------------------
    def _projector_for(self, binding: Binding):
        key = binding.labels
        projector = self._projector_cache.get(key)
        if projector is not None:
            return projector
        items = self.select.items
        if all(isinstance(item.expr, ColumnRef) for item in items):
            positions = [binding.resolve(item.expr) for item in items]
            if len(positions) == 1:
                getter = operator.itemgetter(positions[0])
                projector = lambda row: (getter(row),)  # noqa: E731
            else:
                projector = operator.itemgetter(*positions)
        else:
            fns = [compile_scalar(item.expr, binding) for item in items]
            projector = lambda row: tuple(fn(row) for fn in fns)  # noqa: E731
        return self._projector_cache.setdefault(key, projector)

    def _group_key_for(self, binding: Binding):
        key = binding.labels
        keyfn = self._group_key_cache.get(key)
        if keyfn is not None:
            return keyfn
        exprs = self.select.group_by
        if all(isinstance(expr, ColumnRef) for expr in exprs):
            positions = [binding.resolve(expr) for expr in exprs]
            keyfn = operator.itemgetter(*positions)
        else:
            fns = [compile_scalar(expr, binding) for expr in exprs]
            keyfn = lambda row: tuple(fn(row) for fn in fns)  # noqa: E731
        return self._group_key_cache.setdefault(key, keyfn)

    def _aggregates_for(self, binding: Binding) -> List[Callable]:
        key = binding.labels
        fns = self._aggregate_cache.get(key)
        if fns is not None:
            return fns
        fns = [compile_aggregate(item.expr, binding) for item in self.select.items]
        return self._aggregate_cache.setdefault(key, fns)

    def _group_rows(self, rowset: Rowset) -> List[List[Tuple[Any, ...]]]:
        if not self.select.group_by:
            return [rowset.rows]
        keyfn = self._group_key_for(rowset.binding)
        token = current_token()
        groups: Dict[Any, List[Tuple[Any, ...]]] = {}
        order: List[Any] = []
        for i, row in enumerate(rowset.rows):
            if not (i & (CHECK_STRIDE - 1)):
                token.check()
            group_key = keyfn(row)
            bucket = groups.get(group_key)
            if bucket is None:
                groups[group_key] = bucket = []
                order.append(group_key)
            bucket.append(row)
        return [groups[group_key] for group_key in order]

    def _compile_order_value(self, expr: Expr):
        """Static counterpart of the interpreter's ``_order_value``: an
        unqualified output-column reference wins, then a select-item match."""
        if isinstance(expr, ColumnRef) and expr.qualifier is None:
            try:
                index = self._output_binding.resolve(expr)
                return operator.itemgetter(index)
            except SqlExecutionError:
                pass
        for index, item in enumerate(self.select.items):
            if item.expr == expr:
                return operator.itemgetter(index)
        return _order_error(expr)

    def _project(self, rowset: Rowset, tracer) -> QueryResult:
        if self._aggregated:
            groups = self._group_rows(rowset)
            tracer.count("groups_formed", len(groups))
            fns = self._aggregates_for(rowset.binding)
            out_rows = [tuple(fn(group) for fn in fns) for group in groups]
        else:
            projector = self._projector_for(rowset.binding)
            out_rows = [projector(row) for row in rowset.rows]
        result = Rowset(self._output_binding, out_rows)
        if self.select.distinct:
            result = distinct(result)
        rows = result.rows
        if self._order_keys:
            rows = list(rows)
            for fn, descending in reversed(self._order_keys):
                rows.sort(
                    key=lambda row, fn=fn: null_safe_sort_key(fn(row)),
                    reverse=descending,
                )
        if self.select.limit is not None:
            rows = rows[: self.select.limit]
        tracer.count("rows_output", len(rows))
        return QueryResult(self.output_columns, rows)

    # ------------------------------------------------------------------
    # Rendering (repro --explain)
    # ------------------------------------------------------------------
    def describe(self, indent: str = "") -> List[str]:
        lines: List[str] = []
        run = self.last_run
        for scan in self.scans:
            estimate = None
            if self.decisions is not None:
                decision = self.decisions.scans.get(scan.alias)
                if decision is not None:
                    estimate = decision.est_rows
            actual = run.actual_for(f"scan {scan.alias}") if run else None
            lines.extend(scan.describe(indent, estimate, actual))
        for conjunct in self.pending:
            kind = "equi-join" if conjunct.is_equi else "filter"
            join_mode = "hash" if self.use_hash_joins else "cross+filter"
            lines.append(f"{indent}{kind} {render_expr(conjunct.expr)} [{join_mode}]")
        if self.decisions is not None and self.decisions.join_steps:
            for number, step in enumerate(self.decisions.join_steps, 1):
                actual = run.actual_for(f"join {step.describe()}") if run else None
                lines.append(
                    f"{indent}join order {number}: {step.describe()}"
                    + _rows_note(step.est_rows, actual)
                )
        summary: List[str] = []
        if self._aggregated:
            if self.select.group_by:
                keys = ", ".join(render_expr(expr) for expr in self.select.group_by)
                summary.append(f"group by {keys}")
            summary.append("aggregate " + ", ".join(self.output_columns))
        else:
            summary.append("project " + ", ".join(self.output_columns))
        if self.select.distinct:
            summary.append("distinct")
        if self.select.order_by:
            summary.append("sort")
        if self.select.limit is not None:
            summary.append(f"limit {self.select.limit}")
        summary_line = indent + "; ".join(summary)
        if self.decisions is not None:
            actual = run.actual_for("output") if run else None
            summary_line += _rows_note(self.decisions.est_output, actual)
        lines.append(summary_line)
        return lines

    def explain(self) -> str:
        """Human-readable physical plan, shown by ``repro --explain``."""
        return "\n".join(self.describe())


def _order_error(expr: Expr):
    def fail(_row: Sequence[Any]) -> Any:
        raise SqlExecutionError(
            f"ORDER BY expression {expr!r} must reference an output column"
        )

    return fail
