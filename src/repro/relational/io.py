"""Persistence for databases: CSV tables and a JSON schema document.

A database directory contains one ``schema.json`` (relations, column types,
keys, foreign keys) and one ``<Relation>.csv`` per relation.  This lets
users bring their own data to the keyword-search engine without writing
loader code, and makes the synthetic datasets inspectable on disk.

NULL is encoded in CSV as the empty string; TEXT values that are literally
empty are written as ``""`` (a quoted empty field), which the reader maps
back faithfully.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

SCHEMA_FILE = "schema.json"


# ----------------------------------------------------------------------
# Schema <-> JSON
# ----------------------------------------------------------------------
def schema_to_dict(schema: DatabaseSchema) -> Dict[str, Any]:
    """JSON-serializable description of a database schema."""
    relations = []
    for relation in schema:
        relations.append(
            {
                "name": relation.name,
                "columns": [
                    {"name": col.name, "type": col.dtype.value}
                    for col in relation.columns
                ],
                "primary_key": list(relation.primary_key),
                "foreign_keys": [
                    {
                        "columns": list(fk.columns),
                        "ref_table": fk.ref_table,
                        "ref_columns": list(fk.ref_columns),
                    }
                    for fk in relation.foreign_keys
                ],
            }
        )
    return {"name": schema.name, "relations": relations}


def schema_from_dict(document: Dict[str, Any]) -> DatabaseSchema:
    """Rebuild a :class:`DatabaseSchema` from its JSON description."""
    try:
        schema = DatabaseSchema(document["name"])
        for relation in document["relations"]:
            columns = [
                (col["name"], DataType(col["type"]))
                for col in relation["columns"]
            ]
            foreign_keys = [
                ForeignKey(
                    tuple(fk["columns"]),
                    fk["ref_table"],
                    tuple(fk["ref_columns"]),
                )
                for fk in relation.get("foreign_keys", [])
            ]
            schema.add_relation(
                relation["name"], columns, relation["primary_key"], foreign_keys
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed schema document: {exc}") from exc
    schema.validate()
    return schema


# ----------------------------------------------------------------------
# Values <-> CSV cells
# ----------------------------------------------------------------------
def _encode_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode_cell(text: str, dtype: DataType) -> Any:
    if text == "":
        return None
    if dtype is DataType.INT:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOL:
        return text.lower() == "true"
    return text


# ----------------------------------------------------------------------
# Database <-> directory
# ----------------------------------------------------------------------
def save_database(database: Database, directory: Union[str, Path]) -> Path:
    """Write the database as ``schema.json`` plus one CSV per relation."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / SCHEMA_FILE, "w", encoding="utf-8") as handle:
        json.dump(schema_to_dict(database.schema), handle, indent=2)
    for relation in database.schema:
        table = database.table(relation.name)
        with open(path / f"{relation.name}.csv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(relation.column_names)
            for row in table.rows:
                writer.writerow([_encode_cell(value) for value in row])
    return path


def load_database(directory: Union[str, Path]) -> Database:
    """Read a database directory written by :func:`save_database`."""
    path = Path(directory)
    schema_path = path / SCHEMA_FILE
    if not schema_path.exists():
        raise SchemaError(f"no {SCHEMA_FILE} in {path}")
    with open(schema_path, encoding="utf-8") as handle:
        schema = schema_from_dict(json.load(handle))
    database = Database(schema)
    for relation in schema:
        csv_path = path / f"{relation.name}.csv"
        if not csv_path.exists():
            raise SchemaError(f"missing data file {csv_path.name}")
        with open(csv_path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != list(relation.column_names):
                raise SchemaError(
                    f"{csv_path.name}: header {header} does not match schema "
                    f"columns {list(relation.column_names)}"
                )
            rows = [
                [
                    _decode_cell(cell, col.dtype)
                    for cell, col in zip(row, relation.columns)
                ]
                for row in reader
            ]
        database.load(relation.name, rows)
    database.check_foreign_keys()
    return database


def export_result_csv(result, path: Union[str, Path]) -> Path:
    """Write a :class:`~repro.relational.executor.QueryResult` to CSV."""
    target = Path(path)
    with open(target, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow([_encode_cell(value) for value in row])
    return target
