"""Relational-algebra operators over labelled rowsets.

A :class:`Rowset` is the executor's intermediate representation: a list of
tuples plus a :class:`~repro.relational.expressions.Binding` describing each
position as ``(alias, column)``.  The operators here are pure functions used
by the hash-join planner in :mod:`repro.relational.executor`.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.cancellation import CHECK_STRIDE, current_token
from repro.relational.expressions import Binding, ColumnLabel, evaluate
from repro.sql.ast import Expr

# join loops poll the ambient cancellation token once per _STRIDE outer
# iterations so a runaway join aborts mid-flight (see repro.cancellation)
_STRIDE_MASK = CHECK_STRIDE - 1


class Rowset:
    """Rows plus their column binding."""

    __slots__ = ("binding", "rows")

    def __init__(self, binding: Binding, rows: List[Tuple[Any, ...]]) -> None:
        self.binding = binding
        self.rows = rows

    @classmethod
    def from_labels(
        cls, labels: Sequence[ColumnLabel], rows: Iterable[Sequence[Any]]
    ) -> "Rowset":
        return cls(Binding(labels), [tuple(row) for row in rows])

    def __len__(self) -> int:
        return len(self.rows)

    def relabel(self, qualifier: str) -> "Rowset":
        """Re-qualify every column with *qualifier* (used for FROM aliases)."""
        labels = [(qualifier, name) for _, name in self.binding.labels]
        return Rowset(Binding(labels), self.rows)


def select_rows(rowset: Rowset, predicate: Expr) -> Rowset:
    """sigma: keep rows satisfying *predicate*."""
    binding = rowset.binding
    token = current_token()
    kept: List[Tuple[Any, ...]] = []
    append = kept.append
    for i, row in enumerate(rowset.rows):
        if not (i & _STRIDE_MASK):
            token.check()
        if evaluate(predicate, row, binding):
            append(row)
    return Rowset(binding, kept)


def project(rowset: Rowset, positions: Sequence[int], labels: Sequence[ColumnLabel]) -> Rowset:
    """pi: keep the columns at *positions*, relabelled as *labels*."""
    rows = [tuple(row[i] for i in positions) for row in rowset.rows]
    return Rowset(Binding(labels), rows)


def distinct(rowset: Rowset) -> Rowset:
    """delta: remove duplicate rows, preserving first-seen order."""
    seen = set()
    unique: List[Tuple[Any, ...]] = []
    for row in rowset.rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return Rowset(rowset.binding, unique)


def cross_join(left: Rowset, right: Rowset) -> Rowset:
    """Cartesian product (cancellation checked once per outer row)."""
    binding = left.binding.merge(right.binding)
    token = current_token()
    rows: List[Tuple[Any, ...]] = []
    extend = rows.extend
    # a tighter stride than the hash-join probes: every outer row fans out
    # into len(right) output tuples, so the work between checks multiplies
    for i, l in enumerate(left.rows):
        if not (i & 63):
            token.check()
        extend([l + r for r in right.rows])
    return Rowset(binding, rows)


def hash_join(
    left: Rowset,
    right: Rowset,
    left_positions: Sequence[int],
    right_positions: Sequence[int],
) -> Rowset:
    """Equi-join on the given column positions using a hash table.

    NULL join keys never match (SQL semantics).  The smaller side is used as
    the build input.
    """
    if len(left_positions) != len(right_positions):
        raise ValueError("join key arity mismatch")
    build, probe = left, right
    build_positions, probe_positions = list(left_positions), list(right_positions)
    swapped = False
    if len(right) < len(left):
        build, probe = right, left
        build_positions, probe_positions = list(right_positions), list(left_positions)
        swapped = True
    binding = left.binding.merge(right.binding)
    token = current_token()
    out: List[Tuple[Any, ...]] = []
    append = out.append
    table: dict = {}
    if len(build_positions) == 1:
        # single-key joins (the overwhelmingly common case) skip tuple-key
        # construction and the per-part NULL scan entirely
        build_pos = build_positions[0]
        probe_pos = probe_positions[0]
        for row in build.rows:
            key = row[build_pos]
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)
        lookup = table.get
        if swapped:
            for i, probe_row in enumerate(probe.rows):
                if not (i & _STRIDE_MASK):
                    token.check()
                bucket = lookup(probe_row[probe_pos])
                if bucket is not None:
                    for build_row in bucket:
                        append(probe_row + build_row)
        else:
            for i, probe_row in enumerate(probe.rows):
                if not (i & _STRIDE_MASK):
                    token.check()
                bucket = lookup(probe_row[probe_pos])
                if bucket is not None:
                    for build_row in bucket:
                        append(build_row + probe_row)
        return Rowset(binding, out)
    build_key = itemgetter(*build_positions)
    probe_key = itemgetter(*probe_positions)
    for row in build.rows:
        key = build_key(row)
        if None in key:
            continue
        bucket = table.get(key)
        if bucket is None:
            table[key] = [row]
        else:
            bucket.append(row)
    lookup = table.get
    for i, probe_row in enumerate(probe.rows):
        if not (i & _STRIDE_MASK):
            token.check()
        key = probe_key(probe_row)
        if None in key:
            continue
        bucket = lookup(key)
        if bucket is None:
            continue
        if swapped:
            for build_row in bucket:
                append(probe_row + build_row)
        else:
            for build_row in bucket:
                append(build_row + probe_row)
    return Rowset(binding, out)


def sort_rows(
    rowset: Rowset,
    key: Callable[[Tuple[Any, ...]], Any],
    descending: bool = False,
) -> Rowset:
    return Rowset(rowset.binding, sorted(rowset.rows, key=key, reverse=descending))


def null_safe_sort_key(value: Any) -> Tuple[int, Any]:
    """Sort key placing NULLs first and keeping mixed types comparable."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, value)
    return (1, 2, str(value))
