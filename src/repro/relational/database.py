"""The in-memory database: schema catalog + tables + indexes.

This is the substrate every other layer works against: the keyword matcher
reads its inverted index, the ORM classifier reads its schema, the pattern
translator emits SQL that the executor runs against its tables.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ForeignKeyError, SchemaError, UnknownTableError
from repro.relational.index import HashIndex, InvertedIndex, NumericIndex
from repro.relational.schema import DatabaseSchema, ForeignKey, RelationSchema
from repro.relational.table import Row, Table
from repro.relational.types import DataType


class Database:
    """A named collection of tables conforming to a :class:`DatabaseSchema`."""

    def __init__(self, schema: DatabaseSchema) -> None:
        schema.validate()
        self.schema = schema
        self._tables: Dict[str, Table] = {
            rel.name: Table(rel) for rel in schema
        }
        self._text_index: Optional[InvertedIndex] = None
        self._numeric_index: Optional[NumericIndex] = None
        self._hash_indexes: Dict[Tuple[str, Tuple[str, ...]], HashIndex] = {}
        # data-version bookkeeping: bumped on bulk loads and combined with
        # the total row count, so direct table appends are detected too.
        # The executor's compiled-plan cache and the lazy indexes key their
        # freshness off this value.
        self._mutation_counter = 0
        self._index_version: Optional[Tuple[int, int]] = None
        self._index_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_definitions(
        cls,
        name: str,
        definitions: Sequence[
            Tuple[str, Sequence[Tuple[str, DataType]], Sequence[str], Sequence[ForeignKey]]
        ],
    ) -> "Database":
        """Build a database from ``(name, columns, pk, fks)`` tuples."""
        schema = DatabaseSchema(name)
        for rel_name, columns, primary_key, foreign_keys in definitions:
            schema.add_relation(rel_name, columns, primary_key, foreign_keys)
        return cls(schema)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table {name!r} in database {self.schema.name!r}") from None

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: Sequence[Any]) -> Row:
        return self.table(table_name).insert(row)

    def insert_dict(self, table_name: str, values: Dict[str, Any]) -> Row:
        return self.table(table_name).insert_dict(values)

    def load(self, table_name: str, rows: Iterable[Sequence[Any]]) -> None:
        table = self.table(table_name)
        for row in rows:
            table.insert(row)
        self._invalidate_indexes()

    def check_foreign_keys(self) -> None:
        """Verify referential integrity of the whole database.

        Runs after bulk loading (datasets load parents and children in one
        pass, so per-insert checking would force a topological load order).
        """
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                parent = self.table(fk.ref_table)
                parent_index = self.hash_index(fk.ref_table, fk.ref_columns)
                child_indices = [
                    table.schema.column_index(col) for col in fk.columns
                ]
                for row in table.rows:
                    key = tuple(row[i] for i in child_indices)
                    if any(part is None for part in key):
                        continue  # NULL FK is allowed (no reference)
                    if not parent_index.lookup(key):
                        raise ForeignKeyError(
                            f"{table.schema.name}: {fk} dangling value {key!r}"
                        )

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    @property
    def data_version(self) -> Tuple[int, int]:
        """A value that changes whenever table data changes.

        Combines an explicit mutation counter (bumped by :meth:`load`) with
        the total row count, which also catches rows appended directly via
        ``db.table(name).insert(...)``.  Rows are append-only, so equal
        versions imply identical data.
        """
        return (
            self._mutation_counter,
            sum(len(table) for table in self._tables.values()),
        )

    def _invalidate_indexes(self) -> None:
        with self._index_lock:
            self._mutation_counter += 1
            self._text_index = None
            self._numeric_index = None
            self._hash_indexes.clear()
            self._index_version = None

    def _refresh_indexes(self) -> None:
        """Drop lazy indexes built against a stale data version (caller
        must hold the index lock)."""
        version = self.data_version
        if self._index_version != version:
            self._text_index = None
            self._numeric_index = None
            self._hash_indexes.clear()
            self._index_version = version

    @property
    def text_index(self) -> InvertedIndex:
        """Lazily built full-text index over every text column."""
        with self._index_lock:
            self._refresh_indexes()
            if self._text_index is None:
                index = InvertedIndex()
                index.add_tables(self._tables.values())
                self._text_index = index
            return self._text_index

    @property
    def numeric_index(self) -> NumericIndex:
        """Lazily built exact-value index over every numeric column."""
        with self._index_lock:
            self._refresh_indexes()
            if self._numeric_index is None:
                index = NumericIndex()
                index.add_tables(self._tables.values())
                self._numeric_index = index
            return self._numeric_index

    def hash_index(self, table_name: str, columns: Sequence[str]) -> HashIndex:
        """Lazily built hash index on ``table(columns)``."""
        with self._index_lock:
            self._refresh_indexes()
            key = (table_name, tuple(columns))
            if key not in self._hash_indexes:
                self._hash_indexes[key] = HashIndex(self.table(table_name), columns)
            return self._hash_indexes[key]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def row_counts(self) -> Dict[str, int]:
        return {name: len(table) for name, table in self._tables.items()}

    def summary(self) -> str:
        """Human-readable one-line-per-table summary."""
        lines = [f"database {self.schema.name!r}:"]
        for rel in self.schema:
            table = self._tables[rel.name]
            cols = ", ".join(rel.column_names)
            lines.append(
                f"  {rel.name}({cols})  key={','.join(rel.primary_key)}  rows={len(table)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.schema.name!r}, tables={len(self._tables)})"
