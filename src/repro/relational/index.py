"""Indexes over table data.

Two index kinds are provided:

* :class:`HashIndex` — equi-join / point-lookup acceleration used by the
  executor's hash-join planner.
* :class:`InvertedIndex` — a token -> (relation, attribute) full-text index
  over all text columns of a database, used by the keyword matcher to find
  which relations a query term can refer to, and by the ``contains``
  predicate semantics of generated SQL.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.relational.schema import RelationSchema
from repro.relational.table import Row, Table
from repro.relational.types import DataType

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str) -> List[str]:
    """Lower-case word tokens of a text value."""
    return _TOKEN_RE.findall(text.lower())


class HashIndex:
    """Hash index mapping a column-tuple value to row positions of a table."""

    def __init__(self, table: Table, columns: Sequence[str]) -> None:
        self.table = table
        self.columns = tuple(columns)
        indices = [table.schema.column_index(col) for col in self.columns]
        self._buckets: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
        for pos, row in enumerate(table.rows):
            key = tuple(row[i] for i in indices)
            self._buckets[key].append(pos)

    def lookup(self, key: Tuple[Any, ...]) -> List[Row]:
        positions = self._buckets.get(tuple(key), [])
        rows = self.table.rows
        return [rows[pos] for pos in positions]

    def positions(self, key: Tuple[Any, ...]) -> Set[int]:
        """Row positions holding *key* (used for index-backed scans)."""
        return set(self._buckets.get(tuple(key), ()))

    def __len__(self) -> int:
        return len(self._buckets)


class NumericIndex:
    """Exact-value index over the numeric columns of a set of tables.

    Lets keyword terms that parse as numbers match tuple values (``24``
    matching ``Student.Age``), complementing the text-oriented
    :class:`InvertedIndex`.
    """

    def __init__(self) -> None:
        self._postings: Dict[Any, Dict[Tuple[str, str], Set[int]]] = defaultdict(dict)
        self._tables: Dict[str, Table] = {}

    def add_table(self, table: Table) -> None:
        schema = table.schema
        self._tables[schema.name] = table
        numeric_columns = [
            (i, col.name)
            for i, col in enumerate(schema.columns)
            if col.dtype in (DataType.INT, DataType.FLOAT)
        ]
        if not numeric_columns:
            return
        for pos, row in enumerate(table.rows):
            for col_idx, col_name in numeric_columns:
                value = row[col_idx]
                if value is None:
                    continue
                slot = self._postings[float(value)].setdefault(
                    (schema.name, col_name), set()
                )
                slot.add(pos)

    def add_tables(self, tables: Iterable[Table]) -> None:
        for table in tables:
            self.add_table(table)

    def match_number(self, text: str) -> List[ValueMatch]:
        """Matches for a term that parses as a number; [] otherwise."""
        try:
            needle = float(text)
        except ValueError:
            return []
        slots = self._postings.get(needle, {})
        results = [
            ValueMatch(relation, attribute, set(positions))
            for (relation, attribute), positions in slots.items()
        ]
        results.sort(key=lambda match: (match.relation, match.attribute))
        return results

    def positions_for_value(
        self, relation: str, attribute: str, value: Any
    ) -> Optional[Set[int]]:
        """Candidate row positions where ``relation.attribute == value``.

        Postings are keyed by ``float(value)``, so the set is a superset of
        the exact-equality rows (two large integers can share one float key);
        callers verify candidates against the actual predicate.  Returns
        None when *value* is not a number.
        """
        try:
            needle = float(value)
        except (TypeError, ValueError):
            return None
        return set(self._postings.get(needle, {}).get((relation, attribute), ()))


class ValueMatch:
    """One occurrence set of a phrase inside a (relation, attribute)."""

    __slots__ = ("relation", "attribute", "row_positions")

    def __init__(self, relation: str, attribute: str, row_positions: Set[int]) -> None:
        self.relation = relation
        self.attribute = attribute
        self.row_positions = row_positions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ValueMatch({self.relation}.{self.attribute}, "
            f"rows={len(self.row_positions)})"
        )


class InvertedIndex:
    """Full-text index over the text/date columns of a set of tables.

    The index maps each token to the set of row positions per
    ``(relation, attribute)``.  Phrase queries (``"royal olive"``) intersect
    the posting lists of their tokens and then verify the phrase with a
    substring check, mirroring SQL ``contains`` semantics.
    """

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[Tuple[str, str], Set[int]]] = defaultdict(dict)
        self._tables: Dict[str, Table] = {}

    def add_table(self, table: Table) -> None:
        """Index every text-typed column of *table*."""
        schema: RelationSchema = table.schema
        self._tables[schema.name] = table
        text_columns = [
            (i, col.name)
            for i, col in enumerate(schema.columns)
            if col.dtype in (DataType.TEXT, DataType.DATE)
        ]
        if not text_columns:
            return
        for pos, row in enumerate(table.rows):
            for col_idx, col_name in text_columns:
                value = row[col_idx]
                if value is None:
                    continue
                for token in set(tokenize_text(str(value))):
                    slot = self._postings[token].setdefault((schema.name, col_name), set())
                    slot.add(pos)

    def add_tables(self, tables: Iterable[Table]) -> None:
        for table in tables:
            self.add_table(table)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def match_phrase(self, phrase: str) -> List[ValueMatch]:
        """Find every (relation, attribute) whose values contain *phrase*.

        Matching is case-insensitive; a value matches when the phrase occurs
        as a substring of the value (SQL ``contains``), which the token-level
        candidate set is verified against.
        """
        tokens = tokenize_text(phrase)
        if not tokens:
            return []
        candidate_slots = self._postings.get(tokens[0], {})
        results: List[ValueMatch] = []
        needle = phrase.lower()
        for (relation, attribute), positions in candidate_slots.items():
            candidates = set(positions)
            for token in tokens[1:]:
                other = self._postings.get(token, {}).get((relation, attribute))
                if not other:
                    candidates = set()
                    break
                candidates &= other
            if not candidates:
                continue
            table = self._tables[relation]
            col_idx = table.schema.column_index(attribute)
            verified = {
                pos
                for pos in candidates
                if table.rows[pos][col_idx] is not None
                and needle in str(table.rows[pos][col_idx]).lower()
            }
            if verified:
                results.append(ValueMatch(relation, attribute, verified))
        results.sort(key=lambda match: (match.relation, match.attribute))
        return results

    def positions_for_contains(
        self, relation: str, attribute: str, phrase: str
    ) -> Optional[Set[int]]:
        """Exact row positions where ``relation.attribute`` contains *phrase*
        as a case-insensitive substring (SQL ``contains`` / ``LIKE '%p%'``).

        Candidate generation is sound for substring semantics: if the phrase
        occurs inside a value, the phrase's first token — a maximal
        alphanumeric run — lies within a single token of that value, so
        scanning the vocabulary for tokens containing it as a substring
        covers every possible match.  Candidates are then verified with the
        actual substring test.  Returns None when the phrase has no tokens
        or the relation is not indexed (callers fall back to a scan).
        """
        table = self._tables.get(relation)
        if table is None:
            return None
        if table.schema.column(attribute).dtype not in (DataType.TEXT, DataType.DATE):
            return None  # only text columns are indexed; scan instead
        tokens = tokenize_text(phrase)
        if not tokens:
            return None
        first = tokens[0]
        slot = (relation, attribute)
        candidates: Set[int] = set()
        for token, slots in self._postings.items():
            if first in token:
                hit = slots.get(slot)
                if hit:
                    candidates |= hit
        if not candidates:
            return set()
        col_idx = table.schema.column_index(attribute)
        needle = phrase.lower()
        rows = table.rows
        return {
            pos
            for pos in candidates
            if rows[pos][col_idx] is not None
            and needle in str(rows[pos][col_idx]).lower()
        }

    def tokens_with_prefix(self, prefix: str, limit: int = 20) -> List[str]:
        """Indexed tokens starting with *prefix* (sorted, capped)."""
        lowered = prefix.lower()
        if not lowered:
            return []
        matches = [token for token in self._postings if token.startswith(lowered)]
        matches.sort(key=lambda token: (len(token), token))
        return matches[:limit]

    def slots_of_token(self, token: str) -> List[Tuple[str, str]]:
        """The (relation, attribute) slots a token occurs in."""
        return sorted(self._postings.get(token.lower(), {}))

    def matching_values(self, relation: str, attribute: str, phrase: str) -> Set[Any]:
        """Distinct values of ``relation.attribute`` containing *phrase*."""
        table = self._tables[relation]
        col_idx = table.schema.column_index(attribute)
        needle = phrase.lower()
        return {
            row[col_idx]
            for row in table.rows
            if row[col_idx] is not None and needle in str(row[col_idx]).lower()
        }
