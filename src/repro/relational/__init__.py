"""In-memory relational engine: schema catalog, storage, indexes, executor."""

from repro.relational.database import Database
from repro.relational.executor import Executor, QueryResult, execute_sql
from repro.relational.index import HashIndex, InvertedIndex, NumericIndex
from repro.relational.plan import CompiledPlan
from repro.relational.io import (
    export_result_csv,
    load_database,
    save_database,
    schema_from_dict,
    schema_to_dict,
)
from repro.relational.schema import Column, DatabaseSchema, ForeignKey, RelationSchema
from repro.relational.statistics import (
    ColumnStatistics,
    TableStatistics,
    analyze_database,
    analyze_table,
    estimated_join_selectivity,
)
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = [
    "Column",
    "ColumnStatistics",
    "CompiledPlan",
    "DataType",
    "Database",
    "DatabaseSchema",
    "Executor",
    "NumericIndex",
    "ForeignKey",
    "HashIndex",
    "InvertedIndex",
    "QueryResult",
    "RelationSchema",
    "Table",
    "TableStatistics",
    "analyze_database",
    "analyze_table",
    "estimated_join_selectivity",
    "execute_sql",
    "export_result_csv",
    "load_database",
    "save_database",
    "schema_from_dict",
    "schema_to_dict",
]
