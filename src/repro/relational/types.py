"""Value model for the in-memory relational engine.

The engine supports a small set of scalar datatypes sufficient for the
paper's workloads (TPC-H and ACM Digital Library): integers, floats,
strings, dates and booleans.  ``NULL`` is represented by Python ``None``.

Dates are stored as ISO-8601 strings (``YYYY-MM-DD``); this keeps values
hashable and totally ordered without pulling in ``datetime`` objects, while
``MIN``/``MAX`` over dates behave correctly because ISO dates sort
lexicographically.
"""

from __future__ import annotations

import enum
import re
from typing import Any, Optional

from repro.errors import TypeMismatchError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


class DataType(enum.Enum):
    """Declared type of a column."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"
    BOOL = "bool"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce *value* to *dtype*, raising :class:`TypeMismatchError` on failure.

    ``None`` passes through unchanged (SQL NULL is typeless).  Numeric
    widening (int -> float) is allowed; silent narrowing is not.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"cannot store bool {value!r} in INT column")
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
        elif dtype is DataType.FLOAT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"cannot store bool {value!r} in FLOAT column")
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value)
        elif dtype is DataType.TEXT:
            if isinstance(value, str):
                return value
            return str(value)
        elif dtype is DataType.DATE:
            if isinstance(value, str):
                if not _DATE_RE.match(value):
                    raise TypeMismatchError(f"{value!r} is not an ISO date (YYYY-MM-DD)")
                return value
        elif dtype is DataType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}") from exc
    raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}")


def is_numeric(dtype: DataType) -> bool:
    """Return True for types on which SUM/AVG are meaningful."""
    return dtype in (DataType.INT, DataType.FLOAT)


def infer_type(value: Any) -> Optional[DataType]:
    """Infer the :class:`DataType` of a Python value, or None for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        if _DATE_RE.match(value):
            return DataType.DATE
        return DataType.TEXT
    raise TypeMismatchError(f"unsupported value {value!r} of type {type(value).__name__}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the widened common type of two datatypes for comparisons.

    INT and FLOAT widen to FLOAT; DATE and TEXT widen to TEXT; everything
    else must match exactly.
    """
    if left is right:
        return left
    pair = {left, right}
    if pair == {DataType.INT, DataType.FLOAT}:
        return DataType.FLOAT
    if pair == {DataType.DATE, DataType.TEXT}:
        return DataType.TEXT
    raise TypeMismatchError(f"no common type for {left} and {right}")
