"""SQL executor: runs a :class:`~repro.sql.ast.Select` against a
:class:`~repro.relational.database.Database`.

The planner is deliberately simple but not naive: single-table predicates
are pushed down before joins, equality predicates drive hash joins, and
remaining components fall back to cartesian products.  This is enough to run
every SQL statement the semantic engine and the SQAK baseline generate —
including derived tables, self-joins, DISTINCT projections, GROUP BY and
nested aggregates — at the dataset scales of the evaluation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cancellation import current_token
from repro.errors import SqlExecutionError
from repro.observability import NULL_TRACER
from repro.relational.algebra import (
    Rowset,
    cross_join,
    distinct,
    hash_join,
    null_safe_sort_key,
    select_rows,
)
from repro.relational.database import Database
from repro.relational.expressions import (
    Binding,
    evaluate,
    evaluate_with_aggregates,
)
from repro.relational.plan import CompiledPlan
from repro.relational.result import QueryResult
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    DerivedTable,
    Expr,
    Select,
    TableRef,
)
from repro.sql.parser import parse
from repro.sql.render import render

__all__ = ["Executor", "QueryResult", "execute_sql"]


class _Component:
    """A connected group of FROM items during join planning."""

    __slots__ = ("aliases", "rowset")

    def __init__(self, aliases: Set[str], rowset: Rowset) -> None:
        self.aliases = aliases
        self.rowset = rowset


class Executor:
    """Executes SELECT statements against one database.

    By default every ``Select`` is compiled once into a
    :class:`~repro.relational.plan.CompiledPlan` (closure predicates,
    index-backed scans) and cached by its rendered SQL; cache entries are
    invalidated when :attr:`Database.data_version` changes and by
    :meth:`clear_plan_cache`.  ``compile_plans=False`` selects the original
    interpreted path (per-row AST walks), kept as the ablation baseline.

    ``use_hash_joins=False`` disables the equi-join planner in both paths:
    components are combined with cartesian products and filtered afterwards.
    Semantically identical, asymptotically worse — kept for the planner
    ablation benchmark (DESIGN.md section 5).

    ``optimizer`` selects the plan-choice policy for compiled plans:
    ``"cost"`` (the default) lazily constructs a
    :class:`repro.planner.Optimizer` — statistics-driven join reordering,
    access-path selection and per-operator row estimates — while
    ``"off"`` is the ablation that preserves the pre-planner behavior
    byte-for-byte (greedy size-product join order, index whenever one
    exists).  The interpreted path never consults the optimizer.

    ``validate=True`` runs the static SQL analyzers
    (:func:`repro.analysis.analyze_select`) over every statement before
    executing it and raises :class:`SqlExecutionError` on error-severity
    diagnostics — the debug-mode assertion that gives hand-written SQL the
    same gate as engine-generated SQL.
    """

    plan_cache_size = 256

    def __init__(
        self,
        database: Database,
        use_hash_joins: bool = True,
        tracer=None,
        compile_plans: bool = True,
        validate: bool = False,
        backend_label: str = "memory",
        optimizer: str = "cost",
    ) -> None:
        if optimizer not in ("cost", "off"):
            raise ValueError(
                f"unknown optimizer mode {optimizer!r}: expected 'cost' or 'off'"
            )
        self.database = database
        self.use_hash_joins = use_hash_joins
        self.tracer = tracer or NULL_TRACER
        self.compile_plans = compile_plans
        self.validate = validate
        # shown as the execute-span's backend attribute; the disk backend
        # runs this same executor over paged storage under its own label
        self.backend_label = backend_label
        self.optimizer_mode = optimizer
        self._optimizer: Any = None
        self._plan_cache: "OrderedDict[str, Tuple[Any, CompiledPlan]]" = OrderedDict()
        self._plan_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, query: Union[Select, str], tracer=None) -> QueryResult:
        """Execute a :class:`Select` AST or SQL text.

        *tracer* overrides the executor-level tracer for this call: an
        ``execute`` span with per-operator row counters (``rows_scanned``,
        ``hash_join_rows``, ``rows_output``, ...).
        """
        tracer = tracer or self.tracer
        select = parse(query) if isinstance(query, str) else query
        if self.validate:
            self._validate(select, tracer)
        with tracer.span("execute", backend=self.backend_label):
            if self.compile_plans:
                plan = self.plan_for(select, tracer)
                return plan.execute(tracer)
            return self._execute_select(select, tracer)

    def plan_for(self, select: Select, tracer=NULL_TRACER) -> CompiledPlan:
        """The cached :class:`CompiledPlan` for *select*, compiling on miss.

        Keyed by the statement's canonical rendered SQL, so structurally
        identical ASTs share one plan.  An entry is stale — and recompiled —
        once the database's data version moves past the one it was compiled
        under (index-backed position sets would otherwise be wrong).
        """
        key = render(select)
        version = self.database.data_version
        with self._plan_lock:
            entry = self._plan_cache.get(key)
            if entry is not None and entry[0] == version:
                self._plan_cache.move_to_end(key)
                tracer.count("plan_cache_hits")
                return entry[1]
        plan = CompiledPlan(
            select,
            self.database,
            use_hash_joins=self.use_hash_joins,
            optimizer=self.optimizer,
            tracer=tracer,
        )
        tracer.count("plan_cache_misses")
        tracer.count("compiled_predicates", plan.compiled_predicates)
        with self._plan_lock:
            self._plan_cache[key] = (version, plan)
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def _validate(self, select: Select, tracer=NULL_TRACER) -> None:
        """Debug-mode static gate: raise on error-severity diagnostics."""
        # imported lazily: repro.analysis depends on repro.relational, so a
        # module-level import here would be circular
        from repro.analysis.diagnostics import Severity
        from repro.analysis.sql_analyzers import analyze_select

        with tracer.span("validate"):
            diagnostics = analyze_select(select, self.database.schema)
        tracer.count("diagnostics", len(diagnostics))
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        if errors:
            summary = "; ".join(str(d) for d in errors)
            raise SqlExecutionError(f"statement failed validation: {summary}")

    @property
    def optimizer(self) -> Any:
        """The lazily built :class:`repro.planner.Optimizer`, or None when
        the mode is ``"off"`` (or hash joins are disabled — there is no
        join order to choose under the cross-join ablation)."""
        if self.optimizer_mode == "off" or not self.use_hash_joins:
            return None
        with self._plan_lock:
            if self._optimizer is None:
                # imported lazily: repro.planner depends on repro.relational,
                # so a module-level import here would be circular
                from repro.planner import Optimizer, params_for_backend

                self._optimizer = Optimizer(
                    self.database,
                    cost_params=params_for_backend(self.backend_label),
                )
            return self._optimizer

    def statistics(self, tracer=NULL_TRACER) -> Dict[str, Any]:
        """Table profiles for every relation (``engine.analyze_stats()``).

        Served from the optimizer's statistics catalog when one is active
        (so a later query costs nothing to plan); with the optimizer off
        a throwaway catalog still answers the inspection request.
        """
        optimizer = self.optimizer
        if optimizer is not None:
            return optimizer.catalog.profiles(tracer)
        from repro.planner import StatisticsCatalog

        return StatisticsCatalog(self.database).profiles(tracer)

    def clear_plan_cache(self) -> None:
        """Drop cached plans *and* the optimizer's statistics + memos."""
        with self._plan_lock:
            self._plan_cache.clear()
            optimizer = self._optimizer
        if optimizer is not None:
            optimizer.invalidate()

    @property
    def plan_cache_len(self) -> int:
        with self._plan_lock:
            return len(self._plan_cache)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _execute_select(self, select: Select, tracer=NULL_TRACER) -> QueryResult:
        # cancellation checkpoints: the ambient token (repro.cancellation)
        # is polled at every operator boundary here and inside the row
        # loops of repro.relational.algebra, so a served query with a
        # deadline aborts mid-plan instead of hogging its worker
        token = current_token()
        token.check()
        components = self._load_from_items(select, tracer)
        pending = select.where_conjuncts()
        pending = self._apply_local_predicates(components, pending, tracer)
        merged = self._join_components(components, pending, tracer)
        token.check()
        return self._project(select, merged.rowset, tracer)

    def _load_from_items(self, select: Select, tracer=NULL_TRACER) -> List[_Component]:
        if not select.from_items:
            raise SqlExecutionError("FROM clause is empty")
        components: List[_Component] = []
        seen_aliases: Set[str] = set()
        for item in select.from_items:
            if item.alias in seen_aliases:
                raise SqlExecutionError(f"duplicate alias {item.alias!r} in FROM")
            seen_aliases.add(item.alias)
            if isinstance(item, TableRef):
                table = self.database.table(item.table)
                labels = [(item.alias, name) for name in table.schema.column_names]
                rowset = Rowset(Binding(labels), list(table.rows))
                tracer.count("rows_scanned", len(rowset))
            elif isinstance(item, DerivedTable):
                inner = self._execute_select(item.select, tracer)
                labels = [(item.alias, name) for name in inner.columns]
                rowset = Rowset(Binding(labels), inner.rows)
            else:  # pragma: no cover - defensive
                raise SqlExecutionError(f"unknown FROM item {item!r}")
            components.append(_Component({item.alias}, rowset))
        return components

    def _aliases_of(self, expr: Expr, components: Sequence[_Component]) -> Set[str]:
        """The set of FROM aliases an expression references."""
        aliases: Set[str] = set()
        for node in expr.walk():
            if not isinstance(node, ColumnRef):
                continue
            if node.qualifier is not None:
                aliases.add(node.qualifier)
                continue
            owner_aliases = {
                q
                for component in components
                for q, name in component.rowset.binding.labels
                if name.lower() == node.name.lower()
            }
            if not owner_aliases:
                raise SqlExecutionError(f"unknown column {node}")
            if len(owner_aliases) > 1:
                raise SqlExecutionError(f"ambiguous column {node}")
            aliases.add(next(iter(owner_aliases)))
        return aliases

    def _apply_local_predicates(
        self,
        components: List[_Component],
        conjuncts: List[Expr],
        tracer=NULL_TRACER,
    ) -> List[Expr]:
        """Push single-component predicates down; return the remainder."""
        remaining: List[Expr] = []
        for conjunct in conjuncts:
            aliases = self._aliases_of(conjunct, components)
            owner = None
            for component in components:
                if aliases <= component.aliases:
                    owner = component
                    break
            if owner is not None:
                before = len(owner.rowset)
                owner.rowset = select_rows(owner.rowset, conjunct)
                tracer.count("predicates_pushed")
                tracer.count("rows_filtered", before - len(owner.rowset))
            else:
                remaining.append(conjunct)
        return remaining

    def _join_components(
        self,
        components: List[_Component],
        pending: List[Expr],
        tracer=NULL_TRACER,
    ) -> _Component:
        """Merge components with hash joins until one remains."""
        token = current_token()
        while len(components) > 1:
            token.check()
            pair = (
                self._pick_join_pair(components, pending)
                if self.use_hash_joins
                else None
            )
            if pair is None:
                # no connecting predicate: cartesian product of two smallest
                components.sort(key=lambda component: len(component.rowset))
                left, right = components[0], components[1]
                merged_rowset = cross_join(left.rowset, right.rowset)
                merged = _Component(left.aliases | right.aliases, merged_rowset)
                components = [merged] + components[2:]
                tracer.count("cross_joins")
                tracer.count("cross_join_rows", len(merged_rowset))
            else:
                left, right = pair
                merged = self._hash_join_pair(left, right, pending, components)
                components = [
                    component
                    for component in components
                    if component is not left and component is not right
                ]
                components.append(merged)
                tracer.count("hash_joins")
                tracer.count("hash_join_rows", len(merged.rowset))
            pending = self._apply_local_predicates(components, pending, tracer)
        if pending:
            # every alias is now in one component; apply what is left
            only = components[0]
            for conjunct in pending:
                only.rowset = select_rows(only.rowset, conjunct)
        return components[0]

    def _pick_join_pair(
        self, components: List[_Component], pending: List[Expr]
    ) -> Optional[Tuple[_Component, _Component]]:
        """The joinable component pair with the smallest size product —
        a cheap greedy join order that keeps intermediate results small."""
        best: Optional[Tuple[_Component, _Component]] = None
        best_cost: Optional[int] = None
        for conjunct in pending:
            if not self._is_equi_join(conjunct):
                continue
            aliases = self._aliases_of(conjunct, components)
            touched = [
                component
                for component in components
                if aliases & component.aliases
            ]
            if len(touched) != 2:
                continue
            cost = len(touched[0].rowset) * len(touched[1].rowset)
            if best_cost is None or cost < best_cost:
                best = (touched[0], touched[1])
                best_cost = cost
        return best

    @staticmethod
    def _is_equi_join(expr: Expr) -> bool:
        return (
            isinstance(expr, BinaryOp)
            and expr.op == "="
            and isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, ColumnRef)
        )

    def _hash_join_pair(
        self,
        left: _Component,
        right: _Component,
        pending: List[Expr],
        components: List[_Component],
    ) -> _Component:
        """Join two components on every equi-predicate linking them."""
        left_positions: List[int] = []
        right_positions: List[int] = []
        used: List[Expr] = []
        for conjunct in pending:
            if not self._is_equi_join(conjunct):
                continue
            aliases = self._aliases_of(conjunct, components)
            if not (aliases & left.aliases and aliases & right.aliases):
                continue
            if not aliases <= (left.aliases | right.aliases):
                continue
            assert isinstance(conjunct, BinaryOp)
            lhs, rhs = conjunct.left, conjunct.right
            assert isinstance(lhs, ColumnRef) and isinstance(rhs, ColumnRef)
            lhs_aliases = self._aliases_of(lhs, components)
            if lhs_aliases <= left.aliases:
                left_positions.append(left.rowset.binding.resolve(lhs))
                right_positions.append(right.rowset.binding.resolve(rhs))
            else:
                left_positions.append(left.rowset.binding.resolve(rhs))
                right_positions.append(right.rowset.binding.resolve(lhs))
            used.append(conjunct)
        for conjunct in used:
            pending.remove(conjunct)
        joined = hash_join(left.rowset, right.rowset, left_positions, right_positions)
        return _Component(left.aliases | right.aliases, joined)

    # ------------------------------------------------------------------
    # Projection / grouping
    # ------------------------------------------------------------------
    def _project(
        self, select: Select, rowset: Rowset, tracer=NULL_TRACER
    ) -> QueryResult:
        binding = rowset.binding
        columns = [
            item.output_name(default=f"col{i + 1}")
            for i, item in enumerate(select.items)
        ]
        aggregated = select.has_aggregates() or bool(select.group_by)
        if aggregated:
            groups = self._group_rows(select, rowset)
            tracer.count("groups_formed", len(groups))
            out_rows = [
                tuple(
                    evaluate_with_aggregates(item.expr, group_rows, binding)
                    for item in select.items
                )
                for group_rows in groups
            ]
        else:
            out_rows = [
                tuple(evaluate(item.expr, row, binding) for item in select.items)
                for row in rowset.rows
            ]
        result = Rowset(Binding([(None, name) for name in columns]), out_rows)
        if select.distinct:
            result = distinct(result)
        if select.order_by:
            # stable multi-key sort honouring each key's direction: sort by
            # the least-significant key first, most-significant last
            rows = list(result.rows)
            for item in reversed(select.order_by):
                rows.sort(
                    key=lambda row, item=item: null_safe_sort_key(
                        self._order_value(item.expr, row, result, rowset, select)
                    ),
                    reverse=item.descending,
                )
            result = Rowset(result.binding, rows)
        rows = result.rows
        if select.limit is not None:
            rows = rows[: select.limit]
        tracer.count("rows_output", len(rows))
        return QueryResult(columns, rows)

    def _order_value(
        self,
        expr: Expr,
        out_row: Tuple[Any, ...],
        out_rowset: Rowset,
        in_rowset: Rowset,
        select: Select,
    ) -> Any:
        if isinstance(expr, ColumnRef) and expr.qualifier is None:
            try:
                return out_row[out_rowset.binding.resolve(expr)]
            except SqlExecutionError:
                pass
        # fall back: expression must match a select item
        for index, item in enumerate(select.items):
            if item.expr == expr:
                return out_row[index]
        raise SqlExecutionError(
            f"ORDER BY expression {expr!r} must reference an output column"
        )

    def _group_rows(self, select: Select, rowset: Rowset) -> List[List[Tuple[Any, ...]]]:
        if not select.group_by:
            return [rowset.rows]
        binding = rowset.binding
        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in rowset.rows:
            key = tuple(evaluate(expr, row, binding) for expr in select.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        return [groups[key] for key in order]


def execute_sql(
    database: Database,
    sql: Union[Select, str],
    validate: bool = False,
    optimizer: str = "cost",
) -> QueryResult:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(database, validate=validate, optimizer=optimizer).execute(sql)
