"""Table and column statistics.

``analyze_database`` profiles row counts, per-column distinct counts, null
fractions and min/max values.  The executor's join planner uses component
sizes (a special case of these statistics) to order hash joins; the
statistics are also the raw material for the FD-discovery extension and
handy for dataset inspection in the examples.

This module also provides the *summary structures* consumed by the
cost-based planner (``repro.planner``): equi-height histograms
(:func:`build_equi_height`) and most-common-value lists
(:func:`build_mcv`).  Both builders are deterministic pure functions over
a value sequence — sampling, NDV extrapolation and cache invalidation
live in ``repro.planner.stats`` (lint rule LR009 keeps it that way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.relational.algebra import null_safe_sort_key
from repro.relational.database import Database
from repro.relational.table import Table


@dataclass(frozen=True)
class ColumnStatistics:
    """Profile of one column."""

    column: str
    distinct: int
    nulls: int
    minimum: Optional[Any]
    maximum: Optional[Any]

    def null_fraction(self, rows: int) -> float:
        return self.nulls / rows if rows else 0.0


@dataclass(frozen=True)
class TableStatistics:
    """Profile of one table."""

    relation: str
    rows: int
    columns: Tuple[ColumnStatistics, ...]

    def column(self, name: str) -> ColumnStatistics:
        for stats in self.columns:
            if stats.column == name:
                return stats
        raise KeyError(name)

    def format(self) -> str:
        lines = [f"{self.relation}: {self.rows} rows"]
        for stats in self.columns:
            lines.append(
                f"  {stats.column}: distinct={stats.distinct} "
                f"nulls={stats.nulls} min={stats.minimum!r} max={stats.maximum!r}"
            )
        return "\n".join(lines)


def analyze_table(table: Table) -> TableStatistics:
    """Profile one table in a single pass per column."""
    columns = []
    for index, column in enumerate(table.schema.columns):
        values = [row[index] for row in table.rows]
        non_null = [value for value in values if value is not None]
        distinct = len(set(non_null))
        if non_null:
            minimum = min(non_null, key=null_safe_sort_key)
            maximum = max(non_null, key=null_safe_sort_key)
        else:
            minimum = maximum = None
        columns.append(
            ColumnStatistics(
                column=column.name,
                distinct=distinct,
                nulls=len(values) - len(non_null),
                minimum=minimum,
                maximum=maximum,
            )
        )
    return TableStatistics(
        relation=table.schema.name, rows=len(table), columns=tuple(columns)
    )


def analyze_database(database: Database) -> Dict[str, TableStatistics]:
    """Profile every table of a database."""
    return {
        relation.name: analyze_table(database.table(relation.name))
        for relation in database.schema
    }


def estimated_join_selectivity(
    left: TableStatistics, left_column: str, right: TableStatistics, right_column: str
) -> float:
    """Classical equi-join selectivity estimate: 1 / max(V(l), V(r))."""
    left_distinct = max(1, left.column(left_column).distinct)
    right_distinct = max(1, right.column(right_column).distinct)
    return 1.0 / max(left_distinct, right_distinct)


# ----------------------------------------------------------------------
# Planner summary structures: equi-height histograms and MCV lists
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EquiHeightHistogram:
    """An equi-height (equi-depth) histogram over numeric values.

    ``bounds`` holds ``buckets + 1`` non-decreasing bucket boundaries;
    every bucket summarizes the same number of values (``total /
    buckets``).  Selectivities are estimated by linear interpolation
    inside the containing bucket, so they are guaranteed to stay within
    ``[0, 1]`` and to be monotone under range widening — the two
    invariants the planner's property tests pin down.
    """

    bounds: Tuple[float, ...]
    total: int

    @property
    def buckets(self) -> int:
        return len(self.bounds) - 1

    def le_fraction(self, value: float) -> float:
        """Estimated fraction of summarized values ``<= value``.

        Monotone non-decreasing in *value* and clamped to ``[0, 1]``.
        """
        bounds = self.bounds
        buckets = self.buckets
        if self.total <= 0 or buckets <= 0:
            return 0.0
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        per_bucket = 1.0 / buckets
        acc = 0.0
        for i in range(buckets):
            low, high = bounds[i], bounds[i + 1]
            if value >= high:
                acc += per_bucket
                continue
            if value < low:  # pragma: no cover - bounds are non-decreasing
                break
            width = high - low
            if width > 0:
                acc += per_bucket * ((value - low) / width)
            break
        return min(1.0, max(0.0, acc))

    def range_selectivity(
        self, low: Optional[float] = None, high: Optional[float] = None
    ) -> float:
        """Estimated fraction of values in ``[low, high]``.

        ``None`` leaves that end open.  Bucket-boundary mass is
        approximated by interpolation, so point predicates should go
        through MCV/NDV estimates instead; the guarantee here is the
        pair of invariants above, not point accuracy.
        """
        high_fraction = 1.0 if high is None else self.le_fraction(high)
        low_fraction = 0.0 if low is None else self.le_fraction(low)
        return min(1.0, max(0.0, high_fraction - low_fraction))


@dataclass(frozen=True)
class MostCommonValues:
    """The most frequent values of a column with their frequency.

    ``fractions`` are relative to the summarized (non-null) values; the
    planner combines them with the column's null fraction.
    """

    values: Tuple[Any, ...]
    fractions: Tuple[float, ...]

    @property
    def coverage(self) -> float:
        """Fraction of non-null values captured by the list."""
        return min(1.0, sum(self.fractions))

    def fraction_of(self, value: Any) -> Optional[float]:
        for candidate, fraction in zip(self.values, self.fractions):
            if candidate == value:
                return fraction
        return None


def _numeric_values(values: Iterable[Any]) -> List[float]:
    return [
        float(value)
        for value in values
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]


def build_equi_height(
    values: Iterable[Any], buckets: int = 16
) -> Optional[EquiHeightHistogram]:
    """Build an equi-height histogram from the numeric values in *values*.

    Non-numeric and NULL values are ignored; returns None when nothing
    numeric remains.  Deterministic: no sampling happens here.
    """
    data = sorted(_numeric_values(values))
    count = len(data)
    if count == 0:
        return None
    buckets = max(1, min(buckets, count))
    bounds = [data[0]]
    for k in range(1, buckets + 1):
        index = min(count - 1, math.ceil(k * count / buckets) - 1)
        bounds.append(data[index])
    return EquiHeightHistogram(bounds=tuple(bounds), total=count)


def build_mcv(values: Iterable[Any], size: int = 8) -> Optional[MostCommonValues]:
    """Build a most-common-value list from the non-null values in *values*.

    Ties are broken by value order (via :func:`null_safe_sort_key`) so the
    result is deterministic.  Returns None when every value is NULL.
    """
    counts: Dict[Any, int] = {}
    total = 0
    for value in values:
        if value is None:
            continue
        total += 1
        counts[value] = counts.get(value, 0) + 1
    if not total or size <= 0:
        return None
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], null_safe_sort_key(item[0]))
    )[:size]
    return MostCommonValues(
        values=tuple(value for value, _ in ranked),
        fractions=tuple(count / total for _, count in ranked),
    )
