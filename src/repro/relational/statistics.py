"""Table and column statistics.

``analyze_database`` profiles row counts, per-column distinct counts, null
fractions and min/max values.  The executor's join planner uses component
sizes (a special case of these statistics) to order hash joins; the
statistics are also the raw material for the FD-discovery extension and
handy for dataset inspection in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.relational.algebra import null_safe_sort_key
from repro.relational.database import Database
from repro.relational.table import Table


@dataclass(frozen=True)
class ColumnStatistics:
    """Profile of one column."""

    column: str
    distinct: int
    nulls: int
    minimum: Optional[Any]
    maximum: Optional[Any]

    def null_fraction(self, rows: int) -> float:
        return self.nulls / rows if rows else 0.0


@dataclass(frozen=True)
class TableStatistics:
    """Profile of one table."""

    relation: str
    rows: int
    columns: Tuple[ColumnStatistics, ...]

    def column(self, name: str) -> ColumnStatistics:
        for stats in self.columns:
            if stats.column == name:
                return stats
        raise KeyError(name)

    def format(self) -> str:
        lines = [f"{self.relation}: {self.rows} rows"]
        for stats in self.columns:
            lines.append(
                f"  {stats.column}: distinct={stats.distinct} "
                f"nulls={stats.nulls} min={stats.minimum!r} max={stats.maximum!r}"
            )
        return "\n".join(lines)


def analyze_table(table: Table) -> TableStatistics:
    """Profile one table in a single pass per column."""
    columns = []
    for index, column in enumerate(table.schema.columns):
        values = [row[index] for row in table.rows]
        non_null = [value for value in values if value is not None]
        distinct = len(set(non_null))
        if non_null:
            minimum = min(non_null, key=null_safe_sort_key)
            maximum = max(non_null, key=null_safe_sort_key)
        else:
            minimum = maximum = None
        columns.append(
            ColumnStatistics(
                column=column.name,
                distinct=distinct,
                nulls=len(values) - len(non_null),
                minimum=minimum,
                maximum=maximum,
            )
        )
    return TableStatistics(
        relation=table.schema.name, rows=len(table), columns=tuple(columns)
    )


def analyze_database(database: Database) -> Dict[str, TableStatistics]:
    """Profile every table of a database."""
    return {
        relation.name: analyze_table(database.table(relation.name))
        for relation in database.schema
    }


def estimated_join_selectivity(
    left: TableStatistics, left_column: str, right: TableStatistics, right_column: str
) -> float:
    """Classical equi-join selectivity estimate: 1 / max(V(l), V(r))."""
    left_distinct = max(1, left.column(left_column).distinct)
    right_distinct = max(1, right.column(right_column).distinct)
    return 1.0 / max(left_distinct, right_distinct)
