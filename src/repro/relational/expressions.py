"""Scalar and aggregate expression evaluation for the executor.

A :class:`Binding` maps column references (qualified or not) to positions in
a working row.  NULL semantics follow SQL where it matters for the paper's
queries: comparisons involving NULL are not satisfied, aggregates ignore
NULLs, and ``SUM``/``MIN``/``MAX``/``AVG`` over an empty or all-NULL input
yield NULL.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    Star,
)

ColumnLabel = Tuple[Optional[str], str]  # (qualifier, column name)


class Binding:
    """Resolves column references against an ordered list of column labels."""

    def __init__(self, labels: Sequence[ColumnLabel]) -> None:
        self.labels: Tuple[ColumnLabel, ...] = tuple(labels)
        self._exact: Dict[ColumnLabel, int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for index, (qualifier, name) in enumerate(self.labels):
            self._exact[(qualifier, name.lower())] = index
            self._by_name.setdefault(name.lower(), []).append(index)

    def resolve(self, ref: ColumnRef) -> int:
        """Position of *ref* in the row; raises on unknown or ambiguous."""
        name = ref.name.lower()
        if ref.qualifier is not None:
            index = self._exact.get((ref.qualifier, name))
            if index is None:
                raise SqlExecutionError(f"unknown column {ref}")
            return index
        candidates = self._by_name.get(name, [])
        if not candidates:
            raise SqlExecutionError(f"unknown column {ref}")
        if len(candidates) > 1:
            raise SqlExecutionError(f"ambiguous column {ref}")
        return candidates[0]

    def can_resolve(self, ref: ColumnRef) -> bool:
        try:
            self.resolve(ref)
        except SqlExecutionError:
            return False
        return True

    def merge(self, other: "Binding") -> "Binding":
        return Binding(self.labels + other.labels)

    def __len__(self) -> int:
        return len(self.labels)


def evaluate(expr: Expr, row: Sequence[Any], binding: Binding) -> Any:
    """Evaluate a scalar expression on one row.

    Aggregate calls are rejected here; they are evaluated per-group by
    :func:`evaluate_aggregate`.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[binding.resolve(expr)]
    if isinstance(expr, Contains):
        value = evaluate(expr.column, row, binding)
        if value is None:
            return False
        return expr.phrase.lower() in str(value).lower()
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, row, binding)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, row, binding)
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise SqlExecutionError(
                f"aggregate {expr.name} used outside GROUP BY evaluation"
            )
        raise SqlExecutionError(f"unknown function {expr.name!r}")
    if isinstance(expr, Star):
        raise SqlExecutionError("'*' is only valid inside COUNT(*)")
    raise SqlExecutionError(f"cannot evaluate expression {expr!r}")


def _evaluate_binary(expr: BinaryOp, row: Sequence[Any], binding: Binding) -> Any:
    op = expr.op.upper()
    if op == "AND":
        return bool(evaluate(expr.left, row, binding)) and bool(
            evaluate(expr.right, row, binding)
        )
    if op == "OR":
        return bool(evaluate(expr.left, row, binding)) or bool(
            evaluate(expr.right, row, binding)
        )
    left = evaluate(expr.left, row, binding)
    right = evaluate(expr.right, row, binding)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        if left is None or right is None:
            return False  # SQL UNKNOWN, treated as not-satisfied
        left, right = _align_comparable(left, right)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise SqlExecutionError(
                f"arithmetic on non-numeric values {left!r}, {right!r}"
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise SqlExecutionError("division by zero")
        return left / right
    raise SqlExecutionError(f"unknown operator {expr.op!r}")


def _align_comparable(left: Any, right: Any) -> Tuple[Any, Any]:
    """Allow int/float comparisons; otherwise require matching types."""
    if isinstance(left, bool) or isinstance(right, bool):
        if type(left) is not type(right):
            raise SqlExecutionError(f"cannot compare {left!r} with {right!r}")
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    raise SqlExecutionError(f"cannot compare {left!r} with {right!r}")


def evaluate_aggregate(
    call: FuncCall, rows: Sequence[Sequence[Any]], binding: Binding
) -> Any:
    """Evaluate one aggregate call over the rows of a group.

    Results are routed through
    :func:`repro.relational.result.normalize_aggregate` so output types
    follow SQL semantics (COUNT int, AVG float, empty-group SUM NULL) on
    every execution path.
    """
    # imported lazily: result -> algebra -> expressions would otherwise
    # form a module-level import cycle
    from repro.relational.result import normalize_aggregate

    name = call.name.upper()
    if name == "COUNT":
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            return normalize_aggregate(name, len(rows))
        values = [
            value
            for value in (evaluate(call.args[0], row, binding) for row in rows)
            if value is not None
        ]
        if call.distinct:
            return normalize_aggregate(name, len(set(values)))
        return normalize_aggregate(name, len(values))
    if len(call.args) != 1:
        raise SqlExecutionError(f"{name} takes exactly one argument")
    values = [
        value
        for value in (evaluate(call.args[0], row, binding) for row in rows)
        if value is not None
    ]
    if call.distinct:
        values = list(set(values))
    if not values:
        return None
    if name == "SUM":
        _require_numeric(values, name)
        return normalize_aggregate(name, sum(values))
    if name == "AVG":
        _require_numeric(values, name)
        return normalize_aggregate(name, sum(values) / len(values))
    if name == "MIN":
        return normalize_aggregate(name, min(values))
    if name == "MAX":
        return normalize_aggregate(name, max(values))
    raise SqlExecutionError(f"unknown aggregate {name!r}")


def _require_numeric(values: Sequence[Any], func: str) -> None:
    for value in values:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlExecutionError(f"{func} over non-numeric value {value!r}")


def evaluate_with_aggregates(
    expr: Expr,
    group_rows: Sequence[Sequence[Any]],
    binding: Binding,
) -> Any:
    """Evaluate an expression that may mix aggregates and scalars.

    Scalar sub-expressions are evaluated on the group's first row (legal
    because translators only put group-by expressions outside aggregates).
    """
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return evaluate_aggregate(expr, group_rows, binding)
    if isinstance(expr, BinaryOp) and expr.contains_aggregate():
        op = expr.op.upper()
        if op in ("AND", "OR"):
            raise SqlExecutionError("boolean aggregates are not supported")
        left = evaluate_with_aggregates(expr.left, group_rows, binding)
        right = evaluate_with_aggregates(expr.right, group_rows, binding)
        return _evaluate_binary(
            BinaryOp(expr.op, Literal(left), Literal(right)), (), binding
        )
    if not group_rows:
        return None
    return evaluate(expr, group_rows[0], binding)


# ----------------------------------------------------------------------
# Closure compilation
# ----------------------------------------------------------------------
# The compiled physical plans (repro.relational.plan) evaluate expressions
# through closures built once per (expression, binding) pair instead of
# walking the AST and re-resolving column references on every row.  The
# closures mirror :func:`evaluate` / :func:`evaluate_aggregate` exactly —
# including NULL comparison semantics, type alignment errors and
# division-by-zero — so the interpreted and compiled paths are
# interchangeable.

ScalarFn = Callable[[Sequence[Any]], Any]
GroupFn = Callable[[Sequence[Sequence[Any]]], Any]

_COMPARISON_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _raising(message: str) -> ScalarFn:
    """A closure that raises at call time, matching the interpreter's
    behaviour of only surfacing evaluation errors when a row is evaluated."""

    def fail(_row: Sequence[Any]) -> Any:
        raise SqlExecutionError(message)

    return fail


def _raising_group(message: str) -> GroupFn:
    def fail(_rows: Sequence[Sequence[Any]]) -> Any:
        raise SqlExecutionError(message)

    return fail


def compile_scalar(expr: Expr, binding: Binding) -> ScalarFn:
    """Compile a scalar expression into a ``row -> value`` closure."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        try:
            index = binding.resolve(expr)
        except SqlExecutionError as exc:
            return _raising(str(exc))
        return operator.itemgetter(index)
    if isinstance(expr, Contains):
        operand = compile_scalar(expr.column, binding)
        needle = expr.phrase.lower()

        def contains(row: Sequence[Any]) -> bool:
            value = operand(row)
            if value is None:
                return False
            return needle in str(value).lower()

        return contains
    if isinstance(expr, IsNull):
        operand = compile_scalar(expr.operand, binding)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, binding)
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            return _raising(
                f"aggregate {expr.name} used outside GROUP BY evaluation"
            )
        return _raising(f"unknown function {expr.name!r}")
    if isinstance(expr, Star):
        return _raising("'*' is only valid inside COUNT(*)")
    return _raising(f"cannot evaluate expression {expr!r}")


def _compile_binary(expr: BinaryOp, binding: Binding) -> ScalarFn:
    op = expr.op.upper()
    left = compile_scalar(expr.left, binding)
    right = compile_scalar(expr.right, binding)
    if op == "AND":
        return lambda row: bool(left(row)) and bool(right(row))
    if op == "OR":
        return lambda row: bool(left(row)) or bool(right(row))
    compare = _COMPARISON_OPS.get(op)
    if compare is not None:

        def comparison(row: Sequence[Any]) -> bool:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False  # SQL UNKNOWN, treated as not-satisfied
            a, b = _align_comparable(a, b)
            return compare(a, b)

        return comparison
    if op in ("+", "-", "*", "/"):
        combine = {
            "+": operator.add,
            "-": operator.sub,
            "*": operator.mul,
        }.get(op)

        def arithmetic(row: Sequence[Any]) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                raise SqlExecutionError(
                    f"arithmetic on non-numeric values {a!r}, {b!r}"
                )
            if combine is not None:
                return combine(a, b)
            if b == 0:
                raise SqlExecutionError("division by zero")
            return a / b

        return arithmetic
    return _raising(f"unknown operator {expr.op!r}")


def compile_predicate(expr: Expr, binding: Binding) -> ScalarFn:
    """Compile a WHERE conjunct; the result is used for truthiness, exactly
    like :func:`evaluate` inside ``select_rows``."""
    return compile_scalar(expr, binding)


def _compile_aggregate_call(call: FuncCall, binding: Binding) -> GroupFn:
    # imported lazily to break the result -> algebra -> expressions cycle;
    # this runs once per compiled plan, never per row
    from repro.relational.result import normalize_aggregate

    name = call.name.upper()
    if name == "COUNT":
        # COUNT closures produce ints by construction (len / sum of 1s),
        # which is exactly normalize_aggregate("COUNT", ...) — no wrapper
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            return len
        arg = compile_scalar(call.args[0], binding)
        if call.distinct:
            return lambda rows: len(
                {value for value in map(arg, rows) if value is not None}
            )
        return lambda rows: sum(1 for row in rows if arg(row) is not None)
    if len(call.args) != 1:
        return _raising_group(f"{name} takes exactly one argument")
    arg = compile_scalar(call.args[0], binding)
    use_distinct = call.distinct

    def gather(rows: Sequence[Sequence[Any]]) -> List[Any]:
        values = [value for value in map(arg, rows) if value is not None]
        if use_distinct:
            values = list(set(values))
        return values

    if name == "SUM":

        def agg_sum(rows: Sequence[Sequence[Any]]) -> Any:
            values = gather(rows)
            if not values:
                return None
            _require_numeric(values, "SUM")
            return normalize_aggregate("SUM", sum(values))

        return agg_sum
    if name == "AVG":

        def agg_avg(rows: Sequence[Sequence[Any]]) -> Any:
            values = gather(rows)
            if not values:
                return None
            _require_numeric(values, "AVG")
            return normalize_aggregate("AVG", sum(values) / len(values))

        return agg_avg
    if name == "MIN":
        return lambda rows: normalize_aggregate("MIN", min(gather(rows), default=None))
    if name == "MAX":
        return lambda rows: normalize_aggregate("MAX", max(gather(rows), default=None))
    return _raising_group(f"unknown aggregate {name!r}")


def compile_aggregate(expr: Expr, binding: Binding) -> GroupFn:
    """Compile an output expression that may mix aggregates and scalars
    into a ``group_rows -> value`` closure (the compiled counterpart of
    :func:`evaluate_with_aggregates`)."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return _compile_aggregate_call(expr, binding)
    if isinstance(expr, BinaryOp) and expr.contains_aggregate():
        op = expr.op.upper()
        if op in ("AND", "OR"):
            return _raising_group("boolean aggregates are not supported")
        left = compile_aggregate(expr.left, binding)
        right = compile_aggregate(expr.right, binding)
        template = expr.op

        def combine(rows: Sequence[Sequence[Any]]) -> Any:
            return _evaluate_binary(
                BinaryOp(template, Literal(left(rows)), Literal(right(rows))),
                (),
                binding,
            )

        return combine
    scalar = compile_scalar(expr, binding)

    def first_row(rows: Sequence[Sequence[Any]]) -> Any:
        if not rows:
            return None
        return scalar(rows[0])

    return first_row
