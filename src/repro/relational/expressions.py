"""Scalar and aggregate expression evaluation for the executor.

A :class:`Binding` maps column references (qualified or not) to positions in
a working row.  NULL semantics follow SQL where it matters for the paper's
queries: comparisons involving NULL are not satisfied, aggregates ignore
NULLs, and ``SUM``/``MIN``/``MAX``/``AVG`` over an empty or all-NULL input
yield NULL.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    Star,
)

ColumnLabel = Tuple[Optional[str], str]  # (qualifier, column name)


class Binding:
    """Resolves column references against an ordered list of column labels."""

    def __init__(self, labels: Sequence[ColumnLabel]) -> None:
        self.labels: Tuple[ColumnLabel, ...] = tuple(labels)
        self._exact: Dict[ColumnLabel, int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for index, (qualifier, name) in enumerate(self.labels):
            self._exact[(qualifier, name.lower())] = index
            self._by_name.setdefault(name.lower(), []).append(index)

    def resolve(self, ref: ColumnRef) -> int:
        """Position of *ref* in the row; raises on unknown or ambiguous."""
        name = ref.name.lower()
        if ref.qualifier is not None:
            index = self._exact.get((ref.qualifier, name))
            if index is None:
                raise SqlExecutionError(f"unknown column {ref}")
            return index
        candidates = self._by_name.get(name, [])
        if not candidates:
            raise SqlExecutionError(f"unknown column {ref}")
        if len(candidates) > 1:
            raise SqlExecutionError(f"ambiguous column {ref}")
        return candidates[0]

    def can_resolve(self, ref: ColumnRef) -> bool:
        try:
            self.resolve(ref)
        except SqlExecutionError:
            return False
        return True

    def merge(self, other: "Binding") -> "Binding":
        return Binding(self.labels + other.labels)

    def __len__(self) -> int:
        return len(self.labels)


def evaluate(expr: Expr, row: Sequence[Any], binding: Binding) -> Any:
    """Evaluate a scalar expression on one row.

    Aggregate calls are rejected here; they are evaluated per-group by
    :func:`evaluate_aggregate`.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[binding.resolve(expr)]
    if isinstance(expr, Contains):
        value = evaluate(expr.column, row, binding)
        if value is None:
            return False
        return expr.phrase.lower() in str(value).lower()
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, row, binding)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, row, binding)
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise SqlExecutionError(
                f"aggregate {expr.name} used outside GROUP BY evaluation"
            )
        raise SqlExecutionError(f"unknown function {expr.name!r}")
    if isinstance(expr, Star):
        raise SqlExecutionError("'*' is only valid inside COUNT(*)")
    raise SqlExecutionError(f"cannot evaluate expression {expr!r}")


def _evaluate_binary(expr: BinaryOp, row: Sequence[Any], binding: Binding) -> Any:
    op = expr.op.upper()
    if op == "AND":
        return bool(evaluate(expr.left, row, binding)) and bool(
            evaluate(expr.right, row, binding)
        )
    if op == "OR":
        return bool(evaluate(expr.left, row, binding)) or bool(
            evaluate(expr.right, row, binding)
        )
    left = evaluate(expr.left, row, binding)
    right = evaluate(expr.right, row, binding)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        if left is None or right is None:
            return False  # SQL UNKNOWN, treated as not-satisfied
        left, right = _align_comparable(left, right)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise SqlExecutionError(
                f"arithmetic on non-numeric values {left!r}, {right!r}"
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise SqlExecutionError("division by zero")
        return left / right
    raise SqlExecutionError(f"unknown operator {expr.op!r}")


def _align_comparable(left: Any, right: Any) -> Tuple[Any, Any]:
    """Allow int/float comparisons; otherwise require matching types."""
    if isinstance(left, bool) or isinstance(right, bool):
        if type(left) is not type(right):
            raise SqlExecutionError(f"cannot compare {left!r} with {right!r}")
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    raise SqlExecutionError(f"cannot compare {left!r} with {right!r}")


def evaluate_aggregate(
    call: FuncCall, rows: Sequence[Sequence[Any]], binding: Binding
) -> Any:
    """Evaluate one aggregate call over the rows of a group."""
    name = call.name.upper()
    if name == "COUNT":
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            return len(rows)
        values = [
            value
            for value in (evaluate(call.args[0], row, binding) for row in rows)
            if value is not None
        ]
        if call.distinct:
            return len(set(values))
        return len(values)
    if len(call.args) != 1:
        raise SqlExecutionError(f"{name} takes exactly one argument")
    values = [
        value
        for value in (evaluate(call.args[0], row, binding) for row in rows)
        if value is not None
    ]
    if call.distinct:
        values = list(set(values))
    if not values:
        return None
    if name == "SUM":
        _require_numeric(values, name)
        return sum(values)
    if name == "AVG":
        _require_numeric(values, name)
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise SqlExecutionError(f"unknown aggregate {name!r}")


def _require_numeric(values: Sequence[Any], func: str) -> None:
    for value in values:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlExecutionError(f"{func} over non-numeric value {value!r}")


def evaluate_with_aggregates(
    expr: Expr,
    group_rows: Sequence[Sequence[Any]],
    binding: Binding,
) -> Any:
    """Evaluate an expression that may mix aggregates and scalars.

    Scalar sub-expressions are evaluated on the group's first row (legal
    because translators only put group-by expressions outside aggregates).
    """
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return evaluate_aggregate(expr, group_rows, binding)
    if isinstance(expr, BinaryOp) and expr.contains_aggregate():
        op = expr.op.upper()
        if op in ("AND", "OR"):
            raise SqlExecutionError("boolean aggregates are not supported")
        left = evaluate_with_aggregates(expr.left, group_rows, binding)
        right = evaluate_with_aggregates(expr.right, group_rows, binding)
        return _evaluate_binary(
            BinaryOp(expr.op, Literal(left), Literal(right)), (), binding
        )
    if not group_rows:
        return None
    return evaluate(expr, group_rows[0], binding)
