"""Materialized query results.

:class:`QueryResult` is the output type of both execution paths (the
interpreted executor and the compiled physical plans); it lives in its own
module so :mod:`repro.relational.plan` and
:mod:`repro.relational.executor` can share it without a circular import.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.relational.algebra import null_safe_sort_key


def normalize_aggregate(func: str, value: Any) -> Any:
    """Normalize an aggregate's result to its SQL type.

    Both execution paths of the in-memory engine (interpreted and compiled)
    route every aggregate value through this one function so their output
    types agree with each other *and* with a real SQL backend:

    * ``COUNT`` is always an ``int`` (never a bool, never a float);
    * ``AVG`` is always a ``float`` when non-NULL, even when the mean of
      integer inputs happens to be integral;
    * ``SUM``/``MIN``/``MAX`` over an empty or all-NULL group stay ``None``
      (SQL semantics: no input rows means no sum), and a ``SUM`` of
      booleans widens to ``int`` the way SQL backends store booleans.
    """
    name = func.upper()
    if name == "COUNT":
        return int(value)
    if value is None:
        return None
    if name == "AVG":
        return float(value)
    if name == "SUM" and isinstance(value, bool):
        return int(value)
    return value


class QueryResult:
    """Materialized result of a query: column names plus row tuples."""

    def __init__(self, columns: Sequence[str], rows: List[Tuple[Any, ...]]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self.columns == other.columns and sorted(
            self.rows, key=lambda r: tuple(map(null_safe_sort_key, r))
        ) == sorted(other.rows, key=lambda r: tuple(map(null_safe_sort_key, r)))

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise SqlExecutionError(f"no result column {name!r}") from None
        return [row[index] for row in self.rows]

    def sorted_rows(self) -> List[Tuple[Any, ...]]:
        """Rows in a deterministic order, for comparisons in tests."""
        return sorted(self.rows, key=lambda r: tuple(map(null_safe_sort_key, r)))

    def format_table(self, max_rows: int = 20) -> str:
        """ASCII rendering for examples and experiment reports."""
        shown = self.rows[:max_rows]
        cells = [[str(col) for col in self.columns]] + [
            ["NULL" if v is None else str(v) for v in row] for row in shown
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = []
        header, *body = cells
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"
