"""Schema catalog: columns, relation schemas, keys and foreign keys.

The catalog is deliberately explicit — primary keys and foreign keys are the
raw material from which the ORM schema graph (``repro.orm``) derives the
Object-Relationship-Attribute semantics, so they must be declared, not
inferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """A named, typed column of a relation."""

    name: str
    dtype: DataType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} {self.dtype}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: *columns* of the child relation reference
    *ref_columns* (a key) of *ref_table*.
    """

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                f"foreign key column count mismatch: {self.columns} vs {self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key must reference at least one column")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"FK({', '.join(self.columns)}) -> {self.ref_table}({', '.join(self.ref_columns)})"


class RelationSchema:
    """Schema of one relation: ordered columns, a primary key, foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {}
        for col in self.columns:
            if col.name in self._by_name:
                raise SchemaError(f"duplicate column {col.name!r} in relation {name!r}")
            self._by_name[col.name] = col
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        if not self.primary_key:
            raise SchemaError(f"relation {name!r} must declare a primary key")
        for key_col in self.primary_key:
            if key_col not in self._by_name:
                raise SchemaError(f"primary key column {key_col!r} not in relation {name!r}")
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self._by_name:
                    raise SchemaError(
                        f"foreign key column {col!r} not in relation {name!r}"
                    )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(f"no column {name!r} in relation {self.name!r}") from None

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise UnknownColumnError(f"no column {name!r} in relation {self.name!r}")

    def fk_columns(self) -> Tuple[str, ...]:
        """All column names that participate in some foreign key."""
        seen: List[str] = []
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in seen:
                    seen.append(col)
        return tuple(seen)

    def non_key_columns(self) -> Tuple[str, ...]:
        """Columns that are neither in the primary key nor in any FK."""
        excluded = set(self.primary_key) | set(self.fk_columns())
        return tuple(name for name in self.column_names if name not in excluded)

    def key_is_all_foreign(self) -> bool:
        """True if every primary-key column belongs to some foreign key."""
        fk_cols = set(self.fk_columns())
        return all(col in fk_cols for col in self.primary_key)

    def fks_within_key(self) -> Tuple[ForeignKey, ...]:
        """Foreign keys entirely contained in the primary key."""
        key = set(self.primary_key)
        return tuple(fk for fk in self.foreign_keys if set(fk.columns) <= key)

    def fks_outside_key(self) -> Tuple[ForeignKey, ...]:
        """Foreign keys with at least one column outside the primary key."""
        key = set(self.primary_key)
        return tuple(fk for fk in self.foreign_keys if not set(fk.columns) <= key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelationSchema({self.name!r}, key={self.primary_key})"


class DatabaseSchema:
    """Catalog of relation schemas with referential validation."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._relations: Dict[str, RelationSchema] = {}

    def add(self, relation: RelationSchema) -> RelationSchema:
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        return relation

    def add_relation(
        self,
        name: str,
        columns: Sequence[Tuple[str, DataType]],
        primary_key: Sequence[str],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> RelationSchema:
        """Convenience constructor from ``(name, dtype)`` pairs."""
        schema = RelationSchema(
            name,
            [Column(col_name, dtype) for col_name, dtype in columns],
            primary_key,
            foreign_keys,
        )
        return self.add(schema)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownTableError(f"no relation {name!r} in schema {self.name!r}") from None

    def find_relation(self, name: str) -> Optional[RelationSchema]:
        """Case-insensitive lookup; returns None when absent."""
        if name in self._relations:
            return self._relations[name]
        lowered = name.lower()
        for rel in self._relations.values():
            if rel.name.lower() == lowered:
                return rel
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def validate(self) -> None:
        """Check that every foreign key references an existing relation key.

        A foreign key must reference either the full primary key of the
        parent or a unique attribute set; we require the former, which is
        what the paper's schemas use.
        """
        for rel in self:
            for fk in rel.foreign_keys:
                if fk.ref_table not in self._relations:
                    raise SchemaError(
                        f"relation {rel.name!r}: {fk} references unknown table"
                    )
                parent = self._relations[fk.ref_table]
                if tuple(fk.ref_columns) != parent.primary_key:
                    raise SchemaError(
                        f"relation {rel.name!r}: {fk} must reference the primary key "
                        f"{parent.primary_key} of {parent.name!r}"
                    )
                for child_col, parent_col in zip(fk.columns, fk.ref_columns):
                    child_type = rel.column(child_col).dtype
                    parent_type = parent.column(parent_col).dtype
                    if child_type is not parent_type:
                        raise SchemaError(
                            f"relation {rel.name!r}: FK column {child_col!r} type "
                            f"{child_type} does not match {parent.name}.{parent_col} "
                            f"type {parent_type}"
                        )

    def references_between(self, child: str, parent: str) -> Tuple[ForeignKey, ...]:
        """All foreign keys of *child* that reference *parent*."""
        rel = self.relation(child)
        return tuple(fk for fk in rel.foreign_keys if fk.ref_table == parent)
