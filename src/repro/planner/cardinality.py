"""Cardinality estimation for predicates, equi-joins and GROUP BY.

The primary estimator is *sample evaluation*: a pushed predicate arrives
already compiled to a closure (the same closure the scan will run), so
running it over the table's reservoir sample estimates its selectivity
for free — uniformly across equality, ranges, ``contains`` and arbitrary
boolean combinations, and jointly across several predicates (which
captures column correlation that independence formulas miss).  Counts
are Laplace-smoothed so no estimate collapses to exactly 0 or 1.

When no sample exists (derived tables, empty tables) the estimator falls
back to the classical formulas over :class:`ColumnProfile` summaries:
MCV/NDV for equality, equi-height histogram interpolation for ranges,
``1/max(V(l), V(r))`` for equi-joins, and ``min(rows, prod(NDV(keys)))``
for GROUP BY output sizes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.planner.stats import (
    DEFAULT_PREDICATE_SELECTIVITY,
    ColumnProfile,
    TableProfile,
)
from repro.sql.ast import BinaryOp, ColumnRef, Contains, Expr, Literal

__all__ = [
    "closure_selectivity",
    "expression_selectivity",
    "predicate_selectivity",
    "scan_selectivity",
    "join_selectivity",
    "group_output_estimate",
]

#: assumed selectivity of a pushed ``contains`` phrase with no sample
CONTAINS_SELECTIVITY = 0.1

_RANGE_OPS = ("<", "<=", ">", ">=")


def closure_selectivity(
    closures: Sequence[Callable[[Any], Any]],
    sample: Sequence[Any],
) -> Optional[float]:
    """Fraction of sample rows satisfying *every* closure, smoothed.

    Returns None when the sample is empty.  A closure that raises on a
    sample row (the interpreter's strict mixed-type comparisons) counts
    as a non-match — if it raises on real rows, execution fails anyway
    and the estimate is moot.
    """
    if not sample:
        return None
    hits = 0
    for row in sample:
        try:
            if all(fn(row) for fn in closures):
                hits += 1
        except Exception:
            pass
    return (hits + 0.5) / (len(sample) + 1.0)


def expression_selectivity(
    expr: Expr, column_of: Callable[[Expr], Optional[ColumnProfile]]
) -> float:
    """Formula fallback for one predicate, from its AST shape.

    *column_of* maps a sub-expression to the owning column's profile
    (None when the expression is not a plain column of the scanned
    table).
    """
    if isinstance(expr, Contains):
        return CONTAINS_SELECTIVITY
    if isinstance(expr, BinaryOp) and expr.op == "=":
        sides = (expr.left, expr.right)
        for ref, literal in (sides, sides[::-1]):
            if not isinstance(literal, Literal):
                continue
            profile = column_of(ref)
            if profile is not None:
                return profile.eq_selectivity(literal.value)
        return DEFAULT_PREDICATE_SELECTIVITY
    if isinstance(expr, BinaryOp) and expr.op in _RANGE_OPS:
        if isinstance(expr.right, Literal):
            profile = column_of(expr.left)
            if profile is not None:
                return profile.range_selectivity(expr.op, expr.right.value)
        if isinstance(expr.left, Literal):
            profile = column_of(expr.right)
            if profile is not None:
                return profile.range_selectivity(
                    _flip_op(expr.op), expr.left.value
                )
        return DEFAULT_PREDICATE_SELECTIVITY
    return DEFAULT_PREDICATE_SELECTIVITY


def _flip_op(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def predicate_selectivity(
    expr: Expr,
    closure: Callable[[Any], Any],
    profile: Optional[TableProfile],
    column_of: Callable[[Expr], Optional[ColumnProfile]],
) -> float:
    """Selectivity of one pushed predicate: sample first, formulas second."""
    if profile is not None:
        sampled = closure_selectivity((closure,), profile.sample)
        if sampled is not None:
            return sampled
    return expression_selectivity(expr, column_of)


def scan_selectivity(
    exprs: Sequence[Expr],
    closures: Sequence[Callable[[Any], Any]],
    profile: Optional[TableProfile],
    column_of: Callable[[Expr], Optional[ColumnProfile]],
) -> float:
    """Joint selectivity of every pushed predicate of one scan.

    Evaluated jointly over the sample (correlation-aware); the fallback
    multiplies the per-predicate formulas (independence assumption).
    """
    if not exprs:
        return 1.0
    if profile is not None:
        sampled = closure_selectivity(closures, profile.sample)
        if sampled is not None:
            return sampled
    joint = 1.0
    for expr in exprs:
        joint *= expression_selectivity(expr, column_of)
    return joint


def join_selectivity(left_ndv: float, right_ndv: float) -> float:
    """Classical equi-join selectivity: ``1 / max(V(l), V(r))``."""
    return 1.0 / max(1.0, left_ndv, right_ndv)


def group_output_estimate(
    input_rows: float, key_ndvs: Iterable[float]
) -> float:
    """Estimated GROUP BY output: ``min(rows, prod(NDV(keys)))``."""
    groups = 1.0
    for ndv in key_ndvs:
        groups *= max(1.0, ndv)
        if groups >= input_rows:
            return max(1.0, input_rows)
    return max(1.0, min(input_rows, groups))
