"""Cost-based plan decisions: join order and access paths.

:meth:`Optimizer.decide` runs once per compiled plan (memoized by
rendered SQL and ``data_version``) and produces a
:class:`PlanDecisions`:

* per-scan row estimates and **access-path choices** — for every pushed
  predicate with an index strategy, cost a probe (fixed setup plus
  per-candidate fetch/verify) against the sequential scan it would
  replace and keep the cheaper path;
* a **join order**: within each connected component of the equi-join
  graph (up to :data:`DP_RELATION_LIMIT` relations) a Selinger-style
  dynamic program over connected sub-plans minimizes the summed
  hash-join cost, using NDV-based equi-join selectivities; larger
  components fall back to the executor's runtime greedy (size-product)
  order;
* output estimates for the join result, the GROUP BY group count and
  the final result, surfaced as ``est≈`` annotations in ``--explain``
  and compared against actuals after each execution.

The optimizer only *reorders* the same hash joins and *disables*
index lookups the scan would otherwise consult — every path it picks
exists in today's executor, which is why ``optimizer=off`` restores the
previous behavior byte-for-byte.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.observability import NULL_TRACER
from repro.planner.cardinality import (
    expression_selectivity,
    group_output_estimate,
    join_selectivity,
    predicate_selectivity,
    scan_selectivity,
)
from repro.planner.cost import (
    MEMORY_COST_PARAMS,
    CostParams,
    hash_join_cost,
    index_scan_cost,
    seq_scan_cost,
)
from repro.planner.stats import (
    DEFAULT_PREDICATE_SELECTIVITY,
    ColumnProfile,
    StatisticsCatalog,
    StatsConfig,
    TableProfile,
)
from repro.sql.ast import ColumnRef, Expr
from repro.sql.render import render

__all__ = [
    "DP_RELATION_LIMIT",
    "JoinDecision",
    "ScanDecision",
    "PlanDecisions",
    "Optimizer",
    "recommend_indexes",
]

#: largest connected join-graph component ordered by dynamic programming;
#: beyond it the executor's runtime greedy order takes over
DP_RELATION_LIMIT = 8

#: row estimate for a derived table whose sub-plan carries no decisions
DERIVED_DEFAULT_ROWS = 100.0


@dataclass(frozen=True)
class JoinDecision:
    """One decided hash join: merge the components owning exactly these
    alias sets, in this order."""

    left: FrozenSet[str]
    right: FrozenSet[str]
    est_rows: float

    def describe(self) -> str:
        left = "+".join(sorted(self.left))
        right = "+".join(sorted(self.right))
        return f"{left} ⋈ {right}"


@dataclass(frozen=True)
class ScanDecision:
    """Estimates and access-path choices for one FROM item."""

    alias: str
    relation: Optional[str]
    base_rows: float
    est_rows: float
    #: aligned with the scan's pushed predicates: True/False = use/skip
    #: the available index lookup, None = no index strategy exists
    index_choices: Tuple[Optional[bool], ...]


@dataclass(frozen=True)
class PlanDecisions:
    """Everything the optimizer decided for one compiled plan."""

    scans: Dict[str, ScanDecision]
    join_steps: Tuple[JoinDecision, ...]
    search: str  # 'dp' | 'greedy-runtime' | 'single' | 'none'
    est_joined: float
    est_groups: Optional[float]
    est_output: float

    @property
    def indexes_kept(self) -> int:
        return sum(
            1
            for scan in self.scans.values()
            for choice in scan.index_choices
            if choice is True
        )

    @property
    def indexes_skipped(self) -> int:
        return sum(
            1
            for scan in self.scans.values()
            for choice in scan.index_choices
            if choice is False
        )


class _Edge:
    """An equi-join edge of the join graph."""

    __slots__ = ("left", "right", "selectivity")

    def __init__(self, left: str, right: str, selectivity: float) -> None:
        self.left = left
        self.right = right
        self.selectivity = selectivity


class Optimizer:
    """Statistics-driven decisions for :class:`CompiledPlan`.

    One instance is owned by each :class:`~repro.relational.executor.
    Executor` (lazily, when its ``optimizer`` mode is ``"cost"``); the
    statistics catalog and the decision memo are both dropped by
    :meth:`invalidate` and keyed to ``data_version``, so mutation epochs
    can never serve stale decisions.
    """

    memo_size = 256

    def __init__(
        self,
        database: Any,
        config: Optional[StatsConfig] = None,
        cost_params: Optional[CostParams] = None,
        catalog: Optional[StatisticsCatalog] = None,
    ) -> None:
        self.database = database
        self.params = cost_params or MEMORY_COST_PARAMS
        self.catalog = catalog or StatisticsCatalog(database, config)
        self._memo: "OrderedDict[Any, PlanDecisions]" = OrderedDict()
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop cached statistics and plan decisions."""
        self.catalog.invalidate()
        with self._memo_lock:
            self._memo.clear()

    @property
    def memo_len(self) -> int:
        with self._memo_lock:
            return len(self._memo)

    def decide(self, plan: Any, tracer: Any = NULL_TRACER) -> PlanDecisions:
        """Decisions for *plan*, memoized by SQL text and data version."""
        key = (render(plan.select), self.database.data_version)
        with self._memo_lock:
            cached = self._memo.get(key)
            if cached is not None:
                self._memo.move_to_end(key)
                tracer.count("planner_memo_hits")
                return cached
        with tracer.span("plan_costing"):
            decisions = self._decide(plan, tracer)
        tracer.count("planner_plans_costed")
        if decisions.search == "dp":
            tracer.count("planner_dp_searches")
        elif decisions.search == "greedy-runtime":
            tracer.count("planner_greedy_fallbacks")
        tracer.count("planner_index_paths_kept", decisions.indexes_kept)
        tracer.count("planner_index_paths_skipped", decisions.indexes_skipped)
        with self._memo_lock:
            self._memo[key] = decisions
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return decisions

    # ------------------------------------------------------------------
    # Decision pipeline
    # ------------------------------------------------------------------
    def _decide(self, plan: Any, tracer: Any) -> PlanDecisions:
        profiles: Dict[str, Optional[TableProfile]] = {}
        scans: Dict[str, ScanDecision] = {}
        for scan in plan.scans:
            decision, profile = self._scan_decision(scan, tracer)
            scans[scan.alias] = decision
            profiles[scan.alias] = profile
        edges, residuals = self._join_graph(plan, scans, profiles)

        def subset_rows(subset: FrozenSet[str]) -> float:
            rows = 1.0
            for alias in subset:
                rows *= max(0.0, scans[alias].est_rows)
            for edge in edges:
                if edge.left in subset and edge.right in subset:
                    rows *= edge.selectivity
            for aliases, selectivity in residuals:
                if len(aliases) > 1 and aliases <= subset:
                    rows *= selectivity
            return rows

        steps: List[JoinDecision] = []
        search = "single" if len(scans) <= 1 else "none"
        for component in self._components(list(scans), edges):
            if len(component) < 2:
                continue
            if len(component) > DP_RELATION_LIMIT:
                # too many relations for exhaustive search: keep the
                # executor's runtime greedy order for the whole plan
                steps = []
                search = "greedy-runtime"
                break
            search = "dp"
            steps.extend(self._dp_order(sorted(component), edges, subset_rows))
        est_joined = subset_rows(frozenset(scans))
        est_groups, est_output = self._output_estimates(
            plan, est_joined, profiles, scans
        )
        return PlanDecisions(
            scans=scans,
            join_steps=tuple(steps),
            search=search,
            est_joined=est_joined,
            est_groups=est_groups,
            est_output=est_output,
        )

    def _scan_decision(
        self, scan: Any, tracer: Any
    ) -> Tuple[ScanDecision, Optional[TableProfile]]:
        table_name = getattr(scan, "table_name", None)
        if table_name is None:
            # derived table: estimates flow up from the sub-plan
            sub = getattr(scan.subplan, "decisions", None)
            base = sub.est_output if sub is not None else DERIVED_DEFAULT_ROWS
            est = base
            for pred in scan.pushed:
                est *= expression_selectivity(pred.expr, lambda _expr: None)
            return (
                ScanDecision(
                    alias=scan.alias,
                    relation=None,
                    base_rows=base,
                    est_rows=max(0.0, min(base, est)),
                    index_choices=tuple(None for _ in scan.pushed),
                ),
                None,
            )
        profile = self.catalog.profile(table_name, tracer)
        column_of = self._column_resolver(scan, profile)
        base = float(profile.rows)
        selectivities = [
            predicate_selectivity(pred.expr, pred.closure, profile, column_of)
            for pred in scan.pushed
        ]
        joint = scan_selectivity(
            [pred.expr for pred in scan.pushed],
            [pred.closure for pred in scan.pushed],
            profile,
            column_of,
        )
        est = max(0.0, min(base, base * joint))
        choices: List[Optional[bool]] = []
        for pred, selectivity in zip(scan.pushed, selectivities):
            if pred.lookup is None:
                choices.append(None)
            elif pred.lookup.kind == "never":
                choices.append(True)  # answers from the empty set, free
            else:
                candidates = selectivity * base
                choices.append(
                    index_scan_cost(self.params, candidates)
                    < seq_scan_cost(self.params, base)
                )
        return (
            ScanDecision(
                alias=scan.alias,
                relation=table_name,
                base_rows=base,
                est_rows=est,
                index_choices=tuple(choices),
            ),
            profile,
        )

    @staticmethod
    def _column_resolver(
        scan: Any, profile: TableProfile
    ) -> Callable[[Expr], Optional[ColumnProfile]]:
        def column_of(expr: Expr) -> Optional[ColumnProfile]:
            if not isinstance(expr, ColumnRef):
                return None
            if expr.qualifier is not None and expr.qualifier != scan.alias:
                return None
            return profile.column(expr.name)

        return column_of

    def _join_graph(
        self,
        plan: Any,
        scans: Dict[str, ScanDecision],
        profiles: Dict[str, Optional[TableProfile]],
    ) -> Tuple[List[_Edge], List[Tuple[FrozenSet[str], float]]]:
        edges: List[_Edge] = []
        residuals: List[Tuple[FrozenSet[str], float]] = []
        known = set(scans)
        for conjunct in plan.pending:
            if not conjunct.aliases or not set(conjunct.aliases) <= known:
                continue  # unknown qualifier: fails at runtime, not costed
            if (
                conjunct.is_equi
                and len(conjunct.aliases) == 2
                and conjunct.left_alias in conjunct.aliases
            ):
                left_alias = conjunct.left_alias
                right_alias = next(iter(conjunct.aliases - {left_alias}))
                selectivity = join_selectivity(
                    self._ref_ndv(conjunct.left_ref, left_alias, scans, profiles),
                    self._ref_ndv(conjunct.right_ref, right_alias, scans, profiles),
                )
                edges.append(_Edge(left_alias, right_alias, selectivity))
            else:
                residuals.append(
                    (frozenset(conjunct.aliases), DEFAULT_PREDICATE_SELECTIVITY)
                )
        return edges, residuals

    @staticmethod
    def _ref_ndv(
        ref: Optional[ColumnRef],
        alias: str,
        scans: Dict[str, ScanDecision],
        profiles: Dict[str, Optional[TableProfile]],
    ) -> float:
        est_rows = max(1.0, scans[alias].est_rows)
        profile = profiles.get(alias)
        if profile is None or ref is None:
            return est_rows
        column = profile.column(ref.name)
        if column is None:
            return est_rows
        # filtering a table cannot raise its distinct count
        return max(1.0, min(column.ndv, est_rows))

    @staticmethod
    def _components(
        aliases: List[str], edges: List[_Edge]
    ) -> List[List[str]]:
        neighbours: Dict[str, set] = {alias: set() for alias in aliases}
        for edge in edges:
            neighbours[edge.left].add(edge.right)
            neighbours[edge.right].add(edge.left)
        seen: set = set()
        components: List[List[str]] = []
        for alias in aliases:
            if alias in seen:
                continue
            frontier = [alias]
            component = []
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                component.append(node)
                frontier.extend(neighbours[node] - seen)
            components.append(component)
        return components

    def _dp_order(
        self,
        nodes: Sequence[str],
        edges: List[_Edge],
        subset_rows: Callable[[FrozenSet[str]], float],
    ) -> List[JoinDecision]:
        """Selinger-style DP over connected sub-sets of one component."""
        index = {alias: i for i, alias in enumerate(nodes)}
        count = len(nodes)
        adjacency = [0] * count
        for edge in edges:
            if edge.left in index and edge.right in index:
                adjacency[index[edge.left]] |= 1 << index[edge.right]
                adjacency[index[edge.right]] |= 1 << index[edge.left]
        full = (1 << count) - 1

        alias_cache: Dict[int, FrozenSet[str]] = {}

        def aliases_of(mask: int) -> FrozenSet[str]:
            cached = alias_cache.get(mask)
            if cached is None:
                cached = frozenset(
                    nodes[i] for i in range(count) if mask & (1 << i)
                )
                alias_cache[mask] = cached
            return cached

        rows_cache: Dict[int, float] = {}

        def rows_of(mask: int) -> float:
            cached = rows_cache.get(mask)
            if cached is None:
                cached = subset_rows(aliases_of(mask))
                rows_cache[mask] = cached
            return cached

        def crosses(left_mask: int, right_mask: int) -> bool:
            for i in range(count):
                if left_mask & (1 << i) and adjacency[i] & right_mask:
                    return True
            return False

        best_cost: Dict[int, float] = {1 << i: 0.0 for i in range(count)}
        choice: Dict[int, Tuple[int, int]] = {}
        masks = sorted(range(1, full + 1), key=lambda m: bin(m).count("1"))
        for mask in masks:
            if bin(mask).count("1") < 2:
                continue
            best: Optional[float] = None
            split: Optional[Tuple[int, int]] = None
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:
                    left_cost = best_cost.get(sub)
                    right_cost = best_cost.get(other)
                    if (
                        left_cost is not None
                        and right_cost is not None
                        and crosses(sub, other)
                    ):
                        cost = (
                            left_cost
                            + right_cost
                            + hash_join_cost(
                                self.params,
                                rows_of(sub),
                                rows_of(other),
                                rows_of(mask),
                            )
                        )
                        if best is None or cost < best:
                            best = cost
                            split = (sub, other)
                sub = (sub - 1) & mask
            if best is not None and split is not None:
                best_cost[mask] = best
                choice[mask] = split
        steps: List[JoinDecision] = []

        def emit(mask: int) -> None:
            if bin(mask).count("1") < 2:
                return
            left_mask, right_mask = choice[mask]
            emit(left_mask)
            emit(right_mask)
            steps.append(
                JoinDecision(
                    left=aliases_of(left_mask),
                    right=aliases_of(right_mask),
                    est_rows=rows_of(mask),
                )
            )

        emit(full)
        return steps

    def _output_estimates(
        self,
        plan: Any,
        est_joined: float,
        profiles: Dict[str, Optional[TableProfile]],
        scans: Dict[str, ScanDecision],
    ) -> Tuple[Optional[float], float]:
        select = plan.select
        aggregated = select.has_aggregates() or bool(select.group_by)
        est_groups: Optional[float] = None
        if aggregated:
            if select.group_by:
                ndvs: List[float] = []
                for expr in select.group_by:
                    ndvs.append(
                        self._group_key_ndv(plan, expr, profiles, scans, est_joined)
                    )
                est_groups = group_output_estimate(est_joined, ndvs)
            else:
                est_groups = 1.0
            est_output = est_groups
        else:
            est_output = est_joined
        if select.limit is not None:
            est_output = min(est_output, float(select.limit))
        return est_groups, est_output

    def _group_key_ndv(
        self,
        plan: Any,
        expr: Expr,
        profiles: Dict[str, Optional[TableProfile]],
        scans: Dict[str, ScanDecision],
        est_joined: float,
    ) -> float:
        fallback = max(1.0, est_joined ** 0.5)
        if not isinstance(expr, ColumnRef):
            return fallback
        try:
            alias = plan._alias_of_ref(expr)
        except SqlExecutionError:
            return fallback
        if alias not in scans:
            return fallback
        return self._ref_ndv(expr, alias, scans, profiles)


def recommend_indexes(
    catalog: StatisticsCatalog,
    tracer: Any = NULL_TRACER,
    min_rows: int = 64,
    min_ndv_fraction: float = 0.1,
) -> List[Tuple[str, str]]:
    """Secondary-index recommendations from table statistics.

    Suggests ``(table, column)`` pairs where an equality probe would be
    selective: tables of at least *min_rows* rows and columns whose
    estimated distinct count is at least *min_ndv_fraction* of the row
    count.  The SQLite backend turns these into ``CREATE INDEX``
    statements on top of its foreign-key indexes.
    """
    recommendations: List[Tuple[str, str]] = []
    for relation, profile in sorted(catalog.profiles(tracer).items()):
        if profile.rows < min_rows:
            continue
        for column in profile.columns:
            if column.ndv >= profile.rows * min_ndv_fraction:
                recommendations.append((relation, column.column))
    return recommendations
