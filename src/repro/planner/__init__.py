"""Cost-based query planner: statistics, cardinality estimation, join
reordering and access-path selection.

The package sits above :mod:`repro.relational` and below the engine:

* :mod:`repro.planner.stats` — sampled table profiles (reservoir
  sample, sampled NDV, equi-height histograms, MCV lists) cached per
  :attr:`Database.data_version` in a :class:`StatisticsCatalog`;
* :mod:`repro.planner.cardinality` — selectivity and output-size
  estimates for predicates, equi-joins and GROUP BY;
* :mod:`repro.planner.cost` — per-backend cost coefficients (memory vs
  paged disk) and the operator cost formulas;
* :mod:`repro.planner.optimizer` — :class:`Optimizer`, producing
  :class:`PlanDecisions` (join order via dynamic programming up to
  :data:`DP_RELATION_LIMIT` relations, per-predicate index-vs-seq-scan
  choices, per-operator row estimates).

The executor consults this package lazily (``optimizer="cost"``, the
default) and not at all under the ``optimizer="off"`` ablation; see
``docs/PLANNER.md`` for the full model.  Lint rule LR009 keeps
cost-model constants and statistics sampling confined here.
"""

from repro.planner.cardinality import group_output_estimate, join_selectivity
from repro.planner.cost import (
    DISK_COST_PARAMS,
    MEMORY_COST_PARAMS,
    CostParams,
    params_for_backend,
    q_error,
)
from repro.planner.optimizer import (
    DP_RELATION_LIMIT,
    JoinDecision,
    Optimizer,
    PlanDecisions,
    ScanDecision,
    recommend_indexes,
)
from repro.planner.stats import (
    ColumnProfile,
    StatisticsCatalog,
    StatsConfig,
    TableProfile,
    estimate_ndv,
    profile_table,
)

__all__ = [
    "ColumnProfile",
    "CostParams",
    "DISK_COST_PARAMS",
    "DP_RELATION_LIMIT",
    "JoinDecision",
    "MEMORY_COST_PARAMS",
    "Optimizer",
    "PlanDecisions",
    "ScanDecision",
    "StatisticsCatalog",
    "StatsConfig",
    "TableProfile",
    "estimate_ndv",
    "group_output_estimate",
    "join_selectivity",
    "params_for_backend",
    "profile_table",
    "q_error",
    "recommend_indexes",
]
