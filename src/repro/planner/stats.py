"""Sampled table statistics for the cost-based planner.

A :class:`TableProfile` is built in one pass over a table: exact row
count, per-column null fractions and min/max, a reservoir sample of row
tuples (``random.Random`` seeded from :class:`StatsConfig`, so profiles
are deterministic), and per-column summaries derived from the sample —
sampled NDV (a GEE-style extrapolation when the table is larger than the
sample), an equi-height histogram and an MCV list (both built by the
deterministic constructors in :mod:`repro.relational.statistics`).

:class:`StatisticsCatalog` caches one profile per relation, keyed to
:attr:`Database.data_version` — any mutation epoch drops every cached
profile, and :meth:`invalidate` does so explicitly for
``engine.clear_cache()``.

Lint rule LR009 confines statistics *sampling* (and the cost-model
constants next door in ``repro.planner.cost``) to this package.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.observability import NULL_TRACER
from repro.relational.algebra import null_safe_sort_key
from repro.relational.statistics import (
    EquiHeightHistogram,
    MostCommonValues,
    build_equi_height,
    build_mcv,
)

__all__ = [
    "StatsConfig",
    "ColumnProfile",
    "TableProfile",
    "StatisticsCatalog",
    "estimate_ndv",
    "profile_table",
]

#: reservoir size: large enough for stable estimates, small enough that
#: profiling never dominates even a disk-backed ANALYZE pass
DEFAULT_SAMPLE_SIZE = 512
DEFAULT_HISTOGRAM_BUCKETS = 16
DEFAULT_MCV_SIZE = 8
#: fixed sampling seed — profiles must be reproducible across runs
DEFAULT_SEED = 2016

#: selectivity assumed for predicates the estimator cannot model
DEFAULT_PREDICATE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class StatsConfig:
    """Knobs of the statistics collector."""

    sample_size: int = DEFAULT_SAMPLE_SIZE
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS
    mcv_size: int = DEFAULT_MCV_SIZE
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class ColumnProfile:
    """Planner-facing summary of one column."""

    column: str
    ndv: float
    null_fraction: float
    minimum: Optional[Any]
    maximum: Optional[Any]
    histogram: Optional[EquiHeightHistogram]
    mcv: Optional[MostCommonValues]

    def eq_selectivity(self, value: Any) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if value is None:
            return 0.0
        non_null = 1.0 - self.null_fraction
        if non_null <= 0.0:
            return 0.0
        if self.mcv is not None:
            known = self.mcv.fraction_of(value)
            if known is not None:
                return min(1.0, known * non_null)
            remaining_mass = non_null * max(0.0, 1.0 - self.mcv.coverage)
            remaining_ndv = max(1.0, self.ndv - len(self.mcv.values))
            return min(1.0, remaining_mass / remaining_ndv)
        return min(1.0, non_null / max(1.0, self.ndv))

    def range_selectivity(self, op: str, value: Any) -> float:
        """Estimated fraction of rows satisfying ``column <op> value``."""
        if (
            self.histogram is None
            or not isinstance(value, (int, float))
            or isinstance(value, bool)
        ):
            return DEFAULT_PREDICATE_SELECTIVITY
        below = self.histogram.le_fraction(float(value))
        if op in ("<", "<="):
            fraction = below
        elif op in (">", ">="):
            fraction = 1.0 - below
        else:
            return DEFAULT_PREDICATE_SELECTIVITY
        return min(1.0, max(0.0, fraction * (1.0 - self.null_fraction)))

    def format(self) -> str:
        parts = [
            f"ndv≈{self.ndv:.0f}",
            f"nulls={self.null_fraction:.2f}",
            f"min={self.minimum!r}",
            f"max={self.maximum!r}",
        ]
        if self.histogram is not None:
            parts.append(f"histogram[{self.histogram.buckets}]")
        if self.mcv is not None:
            parts.append(f"mcv[{len(self.mcv.values)}]")
        return f"{self.column}: " + " ".join(parts)


@dataclass(frozen=True)
class TableProfile:
    """Planner-facing summary of one table, plus its row sample."""

    relation: str
    rows: int
    sample: Tuple[Tuple[Any, ...], ...]
    columns: Tuple[ColumnProfile, ...]

    def column(self, name: str) -> Optional[ColumnProfile]:
        lowered = name.lower()
        for profile in self.columns:
            if profile.column.lower() == lowered:
                return profile
        return None

    @property
    def sampled_rows(self) -> int:
        return len(self.sample)

    def format(self) -> str:
        lines = [
            f"{self.relation}: {self.rows} rows (sampled {self.sampled_rows})"
        ]
        lines.extend("  " + profile.format() for profile in self.columns)
        return "\n".join(lines)


def estimate_ndv(sample_counts: Dict[Any, int], rows: int, sampled: int) -> float:
    """Estimate a column's distinct count from sample value frequencies.

    Exact when the sample covers the whole table; otherwise the GEE
    estimator ``sqrt(N/n) * f1 + (d - f1)`` scales up the singleton count
    (values seen exactly once are the ones a sample under-reports).
    """
    distinct = len(sample_counts)
    if distinct == 0:
        return 0.0
    if sampled >= rows or sampled == 0:
        return float(distinct)
    singletons = sum(1 for count in sample_counts.values() if count == 1)
    estimate = math.sqrt(rows / sampled) * singletons + (distinct - singletons)
    return float(min(rows, max(distinct, estimate)))


def profile_table(
    relation: str,
    column_names: Tuple[str, ...],
    rows: Any,
    config: StatsConfig = StatsConfig(),
) -> TableProfile:
    """Profile one table in a single pass over *rows*.

    *rows* may be any sequence of tuples — an in-memory table's row list
    or a disk table's lazy heap-backed sequence; either way every row is
    visited exactly once (ANALYZE semantics).
    """
    width = len(column_names)
    rng = random.Random(config.seed)
    reservoir: List[Tuple[Any, ...]] = []
    nulls = [0] * width
    minimums: List[Optional[Any]] = [None] * width
    maximums: List[Optional[Any]] = [None] * width
    min_keys: List[Any] = [None] * width
    max_keys: List[Any] = [None] * width
    total = 0
    sample_size = max(1, config.sample_size)
    for row in rows:
        total += 1
        if len(reservoir) < sample_size:
            reservoir.append(tuple(row))
        else:
            slot = rng.randrange(total)
            if slot < sample_size:
                reservoir[slot] = tuple(row)
        for index in range(width):
            value = row[index]
            if value is None:
                nulls[index] += 1
                continue
            key = null_safe_sort_key(value)
            if minimums[index] is None or key < min_keys[index]:
                minimums[index] = value
                min_keys[index] = key
            if maximums[index] is None or key > max_keys[index]:
                maximums[index] = value
                max_keys[index] = key
    columns = []
    for index, name in enumerate(column_names):
        sample_values = [row[index] for row in reservoir]
        counts: Dict[Any, int] = {}
        for value in sample_values:
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        columns.append(
            ColumnProfile(
                column=name,
                ndv=estimate_ndv(counts, total, len(reservoir)),
                null_fraction=nulls[index] / total if total else 0.0,
                minimum=minimums[index],
                maximum=maximums[index],
                histogram=build_equi_height(
                    sample_values, buckets=config.histogram_buckets
                ),
                mcv=build_mcv(sample_values, size=config.mcv_size),
            )
        )
    return TableProfile(
        relation=relation,
        rows=total,
        sample=tuple(reservoir),
        columns=tuple(columns),
    )


class StatisticsCatalog:
    """Version-keyed cache of :class:`TableProfile` for one database.

    Accepts anything duck-typed like
    :class:`~repro.relational.database.Database` (``schema``, ``table()``,
    ``data_version``) — the disk backend's ``DiskDatabase`` included.
    Profiles built under one ``data_version`` are dropped as soon as the
    version moves, so a mutation epoch can never serve stale statistics.
    """

    def __init__(self, database: Any, config: Optional[StatsConfig] = None) -> None:
        self.database = database
        self.config = config or StatsConfig()
        self._profiles: Dict[str, TableProfile] = {}
        self._version: Any = None
        self._lock = threading.Lock()
        self.builds = 0

    @property
    def version(self) -> Any:
        with self._lock:
            return self._version

    @property
    def cached_relations(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._profiles))

    def invalidate(self) -> None:
        """Drop every cached profile (``engine.clear_cache()`` hook)."""
        with self._lock:
            self._profiles.clear()
            self._version = None

    def profile(self, relation: str, tracer: Any = NULL_TRACER) -> TableProfile:
        """The profile of *relation*, building (and caching) on miss."""
        version = self.database.data_version
        key = relation.lower()
        with self._lock:
            if version != self._version:
                self._profiles.clear()
                self._version = version
            cached = self._profiles.get(key)
            if cached is not None:
                tracer.count("planner_stats_hits")
                return cached
        table = self.database.table(relation)
        with tracer.span("analyze_table", relation=relation):
            built = profile_table(
                table.schema.name,
                tuple(table.schema.column_names),
                table.rows,
                self.config,
            )
        tracer.count("planner_stats_builds")
        tracer.count("planner_stats_rows_profiled", built.rows)
        with self._lock:
            # a concurrent mutation during the build makes this entry
            # stale immediately; only publish it under the version we read
            if self._version == version and self.database.data_version == version:
                self._profiles[key] = built
            self.builds += 1
        return built

    def profiles(self, tracer: Any = NULL_TRACER) -> Dict[str, TableProfile]:
        """Profiles for every relation of the schema (ANALYZE everything)."""
        return {
            relation.name: self.profile(relation.name, tracer)
            for relation in self.database.schema
        }
