"""The planner's cost model.

Costs are abstract *row-operation units*, not seconds: what matters is
the relative order of candidate plans, and every formula is linear in
the rows an operator touches — mirroring the actual executor, whose hash
joins build and probe in linear time and whose scans verify each
candidate row with a compiled closure.

Per-backend calibration lives in the two :class:`CostParams` presets:
the in-memory indexes answer a probe from a dict lookup, while the disk
backend's B+-tree/hash/SPIMI probes pay page reads through the buffer
pool and return candidate *supersets* that still need heap fetches —
hence a much higher probe setup cost and per-candidate cost.

Lint rule LR009 confines cost-model constants to ``repro/planner/``; the
rest of the codebase consumes plans, not coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CostParams",
    "MEMORY_COST_PARAMS",
    "DISK_COST_PARAMS",
    "params_for_backend",
    "seq_scan_cost",
    "index_scan_cost",
    "hash_join_cost",
    "cross_join_cost",
    "q_error",
]


@dataclass(frozen=True)
class CostParams:
    """Per-backend cost coefficients (abstract units per row)."""

    backend: str
    seq_row: float        # scan + closure-verify one resident row
    index_probe: float    # fixed cost of consulting an index once
    index_row: float      # fetch + verify one index candidate position
    build_row: float      # insert one row into a hash-join build table
    probe_row: float      # probe the build table with one row
    output_row: float     # materialize one joined output row


MEMORY_COST_PARAMS = CostParams(
    backend="memory",
    seq_row=1.0,
    index_probe=20.0,
    index_row=2.5,
    build_row=1.5,
    probe_row=1.0,
    output_row=0.6,
)

DISK_COST_PARAMS = CostParams(
    backend="disk",
    seq_row=1.3,
    index_probe=150.0,
    index_row=5.0,
    build_row=1.5,
    probe_row=1.0,
    output_row=0.6,
)


def params_for_backend(label: str) -> CostParams:
    """The calibration preset for an executor's ``backend_label``."""
    return DISK_COST_PARAMS if label == "disk" else MEMORY_COST_PARAMS


def seq_scan_cost(params: CostParams, rows: float) -> float:
    return params.seq_row * max(0.0, rows)


def index_scan_cost(params: CostParams, candidates: float) -> float:
    """Probe an index, then fetch + verify each candidate position."""
    return params.index_probe + params.index_row * max(0.0, candidates)


def hash_join_cost(
    params: CostParams, left_rows: float, right_rows: float, output_rows: float
) -> float:
    """Build on the smaller side, probe with the larger — like
    :func:`repro.relational.algebra.hash_join`."""
    build = min(left_rows, right_rows)
    probe = max(left_rows, right_rows)
    return (
        params.build_row * max(0.0, build)
        + params.probe_row * max(0.0, probe)
        + params.output_row * max(0.0, output_rows)
    )


def cross_join_cost(params: CostParams, left_rows: float, right_rows: float) -> float:
    return params.output_row * max(0.0, left_rows) * max(0.0, right_rows)


def q_error(estimated: float, actual: float) -> float:
    """The symmetric estimation-error ratio ``max(est/act, act/est)``.

    Both quantities are floored at one row so empty results do not
    divide by zero; a perfect estimate scores 1.0.
    """
    estimated = max(1.0, float(estimated))
    actual = max(1.0, float(actual))
    return max(estimated / actual, actual / estimated)
