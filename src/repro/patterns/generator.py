"""Query-pattern generation (Section 3.1.1).

Pattern generation runs in two stages:

1. **Terminal building** — each combination of tags (one per basic term) is
   folded into *terminal specs*: the object/relationship node instances the
   query refers to, with their conditions and operator annotations.  The
   context rules of [15] merge adjacent metadata/value terms into a single
   node (``{Lecturer George}`` is one Lecturer node, not Lecturer + Student).

2. **Connection** — terminals are connected into a minimal connected graph
   over the ORM schema graph.  A type referred to by several terminals is
   instantiated once per terminal (self-joins), and every relationship node
   on the path between a replicated terminal and its nearest shared
   object/mixed node is replicated with it: ``{Green George Code}`` yields
   two Student nodes, two Enrol nodes and one shared Course node (Figure 4).

The replication rule is implemented with *replication contexts*: a
replicated terminal type spreads its replication through relationship nodes
and stops at object/mixed nodes that are not themselves replicated; a node
reached by several replicated types is instantiated once per combination
(which also yields the natural bipartite pattern when two replicated types
are adjacent).
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import NoPatternError
from repro.keywords.matcher import Catalog
from repro.keywords.query import KeywordQuery, OperatorApplication, Term
from repro.keywords.tags import Tag, TagKind
from repro.observability import NULL_TRACER
from repro.orm.graph import OrmSchemaGraph
from repro.patterns.pattern import (
    AggregateAnnotation,
    Condition,
    GroupByAnnotation,
    QueryPattern,
)

_AGGREGATE_ALIAS_PREFIX = {
    "COUNT": "num",
    "SUM": "sum",
    "AVG": "avg",
    "MIN": "min",
    "MAX": "max",
}


@dataclass
class TerminalSpec:
    """One node instance required by the query, before connection."""

    orm_node: str
    relation: str  # the matched relation within the node
    conditions: List[Condition] = field(default_factory=list)
    aggregates: List[AggregateAnnotation] = field(default_factory=list)
    groupbys: List[GroupByAnnotation] = field(default_factory=list)
    projections: List[tuple] = field(default_factory=list)


def aggregate_alias(func: str, attribute: str) -> str:
    """Output-column name for ``func(attribute)`` (paper style: numCode)."""
    return f"{_AGGREGATE_ALIAS_PREFIX[func]}{attribute}"


class PatternGenerator:
    """Generates annotated query patterns for a keyword query."""

    def __init__(
        self,
        catalog: Catalog,
        max_tag_combinations: int = 64,
        max_patterns: int = 32,
    ) -> None:
        self.catalog = catalog
        self.graph: OrmSchemaGraph = catalog.graph
        self.max_tag_combinations = max_tag_combinations
        self.max_patterns = max_patterns

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def generate(
        self,
        query: KeywordQuery,
        tags: Dict[int, List[Tag]],
        tracer=NULL_TRACER,
    ) -> List[QueryPattern]:
        """All distinct patterns over the tag combinations, unranked.

        ``patterns_pruned`` counts tag combinations that produced no new
        pattern: invalid terminal combinations, disconnected terminals,
        and duplicates of an already-seen pattern signature.
        """
        basic_terms = query.basic_terms
        positions = [term.position for term in basic_terms]
        choice_lists = [tags[position] for position in positions]
        patterns: List[QueryPattern] = []
        seen_signatures: Set[Tuple] = set()
        combinations = itertools.islice(
            itertools.product(*choice_lists), self.max_tag_combinations
        )
        for combination in combinations:
            tracer.count("tag_combinations")
            tag_choice = dict(zip(positions, combination))
            terminals = self.build_terminals(query, tag_choice)
            if terminals is None:
                tracer.count("patterns_pruned")
                continue
            try:
                pattern = self.connect_terminals(terminals)
            except NoPatternError:
                tracer.count("patterns_pruned")
                continue
            pattern.tag_exactness = 1.0
            for tag in combination:
                pattern.tag_exactness *= tag.exactness
            signature = pattern.signature()
            if signature in seen_signatures:
                tracer.count("patterns_pruned")
                continue
            seen_signatures.add(signature)
            patterns.append(pattern)
            if len(patterns) >= self.max_patterns:
                break
        if not patterns:
            raise NoPatternError(
                f"no connected query pattern for {query.raw!r}"
            )
        tracer.count("patterns_generated", len(patterns))
        return patterns

    # ------------------------------------------------------------------
    # Stage 1: terminals
    # ------------------------------------------------------------------
    def build_terminals(
        self, query: KeywordQuery, tag_choice: Dict[int, Tag]
    ) -> Optional[List[TerminalSpec]]:
        """Fold one tag combination into terminal specs.

        Returns None when the combination violates a match-dependent
        constraint (an aggregate operand that is not an attribute name, an
        operator applied to a value term, ...).
        """
        terminals: List[TerminalSpec] = []
        terminal_of_position: Dict[int, TerminalSpec] = {}
        basic_terms = query.basic_terms
        for index, term in enumerate(basic_terms):
            tag = tag_choice[term.position]
            application = query.application_for(term.position)
            if tag.kind is TagKind.RELATION:
                terminal = self._relation_terminal(term, tag, application)
                if terminal is None:
                    return None
                terminals.append(terminal)
                terminal_of_position[term.position] = terminal
            elif tag.kind is TagKind.ATTRIBUTE:
                terminal = self._attach_attribute(
                    terminals, term, tag, application
                )
                if terminal is None:
                    return None
                terminal_of_position[term.position] = terminal
            else:  # VALUE
                if application is not None:
                    return None  # operators need metadata operands
                previous = basic_terms[index - 1] if index > 0 else None
                terminal = self._value_terminal(
                    terminals, terminal_of_position, previous, term, tag
                )
                terminal_of_position[term.position] = terminal
        return terminals

    def _relation_terminal(
        self, term: Term, tag: Tag, application: Optional[OperatorApplication]
    ) -> Optional[TerminalSpec]:
        node = self.graph.node(tag.node)
        terminal = TerminalSpec(orm_node=tag.node, relation=tag.relation)
        if application is None:
            # a bare relation term names a search target: project its
            # identifier ({Lecturer George}: return the lecturer)
            relation_schema = self.graph.schema.relation(tag.relation)
            terminal.projections.append(
                (tag.relation, relation_schema.primary_key[0])
            )
            return terminal
        relation_schema = self.graph.schema.relation(tag.relation)
        identifier = relation_schema.primary_key
        if application.groupby:
            terminal.groupbys.append(
                GroupByAnnotation(tag.relation, tuple(identifier))
            )
            return terminal
        innermost = application.chain[-1]
        if innermost != "COUNT":
            # MIN/MAX/AVG/SUM must be applied to an attribute name
            return None
        terminal.aggregates.append(
            AggregateAnnotation(
                func="COUNT",
                relation=tag.relation,
                attribute=identifier[0],
                alias=aggregate_alias("COUNT", identifier[0]),
                outer_chain=tuple(application.chain[:-1]),
            )
        )
        return terminal

    def _attach_attribute(
        self,
        terminals: List[TerminalSpec],
        term: Term,
        tag: Tag,
        application: Optional[OperatorApplication],
    ) -> Optional[TerminalSpec]:
        # attribute references do not denote new object instances: attach to
        # an existing terminal of the same ORM node when one exists
        terminal = None
        for candidate in reversed(terminals):
            if candidate.orm_node == tag.node:
                terminal = candidate
                break
        if terminal is None:
            terminal = TerminalSpec(orm_node=tag.node, relation=tag.relation)
            terminals.append(terminal)
        if application is None:
            # a bare attribute term names a search target ({Green George
            # Code}: return the course codes)
            assert tag.attribute is not None
            terminal.projections.append((tag.relation, tag.attribute))
            return terminal
        assert tag.attribute is not None
        if application.groupby:
            terminal.groupbys.append(
                GroupByAnnotation(tag.relation, (tag.attribute,))
            )
            return terminal
        innermost = application.chain[-1]
        terminal.aggregates.append(
            AggregateAnnotation(
                func=innermost,
                relation=tag.relation,
                attribute=tag.attribute,
                alias=aggregate_alias(innermost, tag.attribute),
                outer_chain=tuple(application.chain[:-1]),
            )
        )
        return terminal

    def _value_terminal(
        self,
        terminals: List[TerminalSpec],
        terminal_of_position: Dict[int, TerminalSpec],
        previous: Optional[Term],
        term: Term,
        tag: Tag,
    ) -> TerminalSpec:
        assert tag.attribute is not None
        condition = Condition(
            relation=tag.relation,
            attribute=tag.attribute,
            phrase=term.text,
            distinct_objects=tag.distinct_objects,
            value=tag.value,
        )
        # context merge: a value term immediately after a metadata term of
        # the same node refines that node instead of creating a new one
        if previous is not None and previous.position == term.position - 1:
            anchor = terminal_of_position.get(previous.position)
            if (
                anchor is not None
                and anchor.orm_node == tag.node
                and not anchor.conditions
            ):
                anchor.conditions.append(condition)
                return anchor
        terminal = TerminalSpec(orm_node=tag.node, relation=tag.relation)
        terminal.conditions.append(condition)
        terminals.append(terminal)
        return terminal

    # ------------------------------------------------------------------
    # Stage 2: connection
    # ------------------------------------------------------------------
    def connect_terminals(self, terminals: Sequence[TerminalSpec]) -> QueryPattern:
        """Connect terminal specs into one query pattern."""
        if not terminals:
            raise NoPatternError("query has no terminals")
        types = list(dict.fromkeys(spec.orm_node for spec in terminals))
        counts = Counter(spec.orm_node for spec in terminals)

        from repro.errors import SchemaError

        try:
            tree_edges = self._tree_edges(types, counts)
        except SchemaError as exc:
            raise NoPatternError(str(exc)) from exc
        tree_nodes = set(types)
        for first, second in tree_edges:
            tree_nodes.add(first)
            tree_nodes.add(second)

        adjacency: Dict[str, Set[str]] = {node: set() for node in tree_nodes}
        for first, second in tree_edges:
            adjacency[first].add(second)
            adjacency[second].add(first)

        multi = {name for name, count in counts.items() if count > 1}
        groups = self._replication_groups(tree_nodes, adjacency, multi)

        pattern = QueryPattern()
        instance_ids: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], int] = {}
        assignments_of: Dict[str, List[Dict[str, int]]] = {}
        for name in sorted(tree_nodes):
            node_groups = sorted(groups.get(name, frozenset()))
            index_ranges = [range(counts[group]) for group in node_groups]
            node_assignments: List[Dict[str, int]] = [
                dict(zip(node_groups, combo))
                for combo in itertools.product(*index_ranges)
            ] or [{}]
            assignments_of[name] = node_assignments
            orm_node = self.graph.node(name)
            for assignment in node_assignments:
                key = (name, tuple(sorted(assignment.items())))
                node = pattern.add_node(
                    name, orm_node.main_relation.name, orm_node.type
                )
                instance_ids[key] = node.id

        for first, second in sorted(tree_edges):
            orm_edges = sorted(
                self.graph.edges_between(first, second),
                key=lambda e: (e.child_relation, e.foreign_key.columns),
            )
            if not orm_edges:
                raise NoPatternError(
                    f"no ORM edge between {first!r} and {second!r}"
                )
            orm_edge = orm_edges[0]
            shared = set(groups.get(first, frozenset())) & set(
                groups.get(second, frozenset())
            )
            for assign_a in assignments_of[first]:
                for assign_b in assignments_of[second]:
                    if any(assign_a[g] != assign_b[g] for g in shared):
                        continue
                    id_a = instance_ids[(first, tuple(sorted(assign_a.items())))]
                    id_b = instance_ids[(second, tuple(sorted(assign_b.items())))]
                    pattern.add_edge(id_a, id_b, orm_edge)

        self._apply_terminal_specs(
            pattern, terminals, counts, groups, instance_ids, assignments_of
        )
        if not pattern.is_connected():
            raise NoPatternError("generated pattern is disconnected")
        return pattern

    def _tree_edges(
        self, types: List[str], counts: Counter
    ) -> Set[Tuple[str, str]]:
        if len(types) == 1:
            name = types[0]
            if counts[name] == 1:
                return set()
            # several instances of a single type: route them through the
            # nearest other object/mixed node (the common-course hub)
            hub_path = self._nearest_object_like_path(name)
            if hub_path is None:
                raise NoPatternError(
                    f"cannot connect several {name!r} instances: no hub node"
                )
            return {
                tuple(sorted(pair))  # type: ignore[misc]
                for pair in zip(hub_path, hub_path[1:])
            }
        return self.graph.steiner_tree(types)

    def _nearest_object_like_path(self, source: str) -> Optional[List[str]]:
        seen = {source}
        queue = deque([[source]])
        while queue:
            path = queue.popleft()
            last = path[-1]
            if last != source and self.graph.node(last).is_object_like:
                return path
            for neighbor in self.graph.neighbors(last):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(path + [neighbor])
        return None

    def _replication_groups(
        self,
        tree_nodes: Set[str],
        adjacency: Dict[str, Set[str]],
        multi: Set[str],
    ) -> Dict[str, FrozenSet[str]]:
        groups: Dict[str, Set[str]] = {node: set() for node in tree_nodes}
        for name in multi:
            groups[name].add(name)
            visited = {name}
            queue = deque([name])
            while queue:
                current = queue.popleft()
                for neighbor in adjacency[current]:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    if neighbor in multi:
                        continue  # replicated terminals keep their own count
                    if self.graph.node(neighbor).is_object_like:
                        continue  # shared object/mixed node absorbs
                    groups[neighbor].add(name)
                    queue.append(neighbor)
        return {node: frozenset(names) for node, names in groups.items()}

    def _apply_terminal_specs(
        self,
        pattern: QueryPattern,
        terminals: Sequence[TerminalSpec],
        counts: Counter,
        groups: Dict[str, FrozenSet[str]],
        instance_ids: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], int],
        assignments_of: Dict[str, List[Dict[str, int]]],
    ) -> None:
        next_index: Dict[str, int] = {}
        for spec in terminals:
            name = spec.orm_node
            if counts[name] > 1:
                index = next_index.get(name, 0)
                next_index[name] = index + 1
                target_ids = [
                    instance_ids[(name, tuple(sorted(assignment.items())))]
                    for assignment in assignments_of[name]
                    if assignment.get(name) == index
                ]
            else:
                target_ids = [
                    instance_ids[(name, tuple(sorted(assignment.items())))]
                    for assignment in assignments_of[name]
                ]
            for node_id in target_ids:
                node = pattern.node(node_id)
                node.conditions.extend(spec.conditions)
                node.aggregates.extend(spec.aggregates)
                node.groupbys.extend(spec.groupbys)
                node.projections.extend(spec.projections)
