"""Pattern translation into SQL (Section 3.1.3).

The translator walks an annotated query pattern and produces a
:class:`~repro.sql.ast.Select`:

* **SELECT** — GROUPBY-annotated attributes (for readability of the result)
  followed by the aggregate functions;
* **FROM** — one entry per pattern node.  A relationship node connected to
  fewer object/mixed nodes than its ORM-graph counterpart is replaced by a
  duplicate-eliminating ``SELECT DISTINCT`` projection of the foreign keys
  that reference the connected participants (Example 6) — the step SQAK
  misses;
* **WHERE** — foreign-key joins along pattern edges plus ``contains``
  conditions;
* **GROUP BY** — all GROUPBY annotations, including the identifier
  annotations added by disambiguation;
* nested aggregates wrap the statement in outer queries (Example 7).

Where each node's rows come from is delegated to a *source provider*: the
normalized provider reads base tables directly, while the unnormalized
provider (``repro.unnormalized``) materializes normalized-view fragments as
subqueries over the stored denormalized relations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.observability import NULL_TRACER
from repro.orm.classify import RelationType
from repro.orm.graph import OrmSchemaGraph
from repro.patterns.pattern import PatternNode, QueryPattern
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    TableRef,
    eq,
)


class SourceProvider:
    """Maps a pattern node to a FROM item given the attributes it must
    expose.  ``force_distinct`` requests duplicate elimination over exactly
    *needed_attrs* (the relationship-projection rule)."""

    def from_item(
        self,
        node: PatternNode,
        needed_attrs: Sequence[str],
        force_distinct: bool,
        alias: str,
    ) -> FromItem:
        raise NotImplementedError


class NormalizedSourceProvider(SourceProvider):
    """Provider for normalized databases: base tables, with a DISTINCT
    foreign-key projection when the translator requests one."""

    def from_item(
        self,
        node: PatternNode,
        needed_attrs: Sequence[str],
        force_distinct: bool,
        alias: str,
    ) -> FromItem:
        if not force_distinct:
            return TableRef(node.relation, alias)
        projection = Select(
            items=tuple(SelectItem(ColumnRef(attr)) for attr in needed_attrs),
            from_items=(TableRef.of(node.relation),),
            distinct=True,
        )
        return DerivedTable(projection, alias)


class PatternTranslator:
    """Translates annotated query patterns into SQL ASTs."""

    def __init__(
        self,
        graph: OrmSchemaGraph,
        provider: Optional[SourceProvider] = None,
        dedup_relationships: bool = True,
    ) -> None:
        self.graph = graph
        self.provider = provider or NormalizedSourceProvider()
        # ablation knob: disabling relationship dedup reproduces SQAK's
        # over-counting through n-ary relationships (DESIGN.md ablation 1)
        self.dedup_relationships = dedup_relationships

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def translate(self, pattern: QueryPattern, tracer=NULL_TRACER) -> Select:
        aliases = self._assign_aliases(pattern)
        component_aliases: Dict[Tuple[int, str], str] = {}

        from_items: List[FromItem] = []
        predicates: List[Expr] = []

        # FROM entries per node (with relationship dedup projections)
        for node in pattern.nodes:
            needed, force_distinct = self._needed_attributes(pattern, node)
            if force_distinct:
                tracer.count("distinct_projections")
            from_items.append(
                self.provider.from_item(node, needed, force_distinct, aliases[node.id])
            )
        tracer.count("patterns_translated")

        # component relations referenced by annotations
        self._add_component_relations(
            pattern, aliases, component_aliases, from_items, predicates
        )

        # joins along pattern edges
        for edge in pattern.edges:
            child_id, parent_id = self._edge_direction(pattern, edge)
            fk = edge.orm_edge.foreign_key
            for child_col, parent_col in zip(fk.columns, fk.ref_columns):
                predicates.append(
                    eq(
                        ColumnRef(child_col, aliases[child_id]),
                        ColumnRef(parent_col, aliases[parent_id]),
                    )
                )

        # conditions: exact equality for numeric matches, contains otherwise
        for node in pattern.nodes:
            for condition in node.conditions:
                qualifier = self._attribute_qualifier(
                    node, condition.relation, aliases, component_aliases
                )
                ref = ColumnRef(condition.attribute, qualifier)
                if condition.value is not None:
                    predicates.append(eq(ref, Literal(condition.value)))
                else:
                    predicates.append(Contains(ref, condition.phrase))

        # SELECT and GROUP BY
        select_items, group_by = self._projection(
            pattern, aliases, component_aliases
        )

        plain_query = not any(node.aggregates for node in pattern.nodes) and not group_by
        select = Select(
            items=tuple(select_items),
            from_items=tuple(from_items),
            where=Select.conjunction(predicates),
            group_by=tuple(group_by),
            distinct=plain_query,
        )
        return self._wrap_nested(pattern, select)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _assign_aliases(pattern: QueryPattern) -> Dict[int, str]:
        counters: Dict[str, int] = {}
        aliases: Dict[int, str] = {}
        for node in pattern.nodes:
            prefix = node.relation[0].upper()
            counters[prefix] = counters.get(prefix, 0) + 1
            aliases[node.id] = f"{prefix}{counters[prefix]}"
        return aliases

    def _needed_attributes(
        self, pattern: QueryPattern, node: PatternNode
    ) -> Tuple[List[str], bool]:
        """The attributes a node's FROM item must expose, plus whether a
        duplicate-eliminating projection is required."""
        needed: List[str] = []

        def add(attr: str) -> None:
            if attr not in needed:
                needed.append(attr)

        for edge in pattern.edges_of(node.id):
            child_id, parent_id = self._edge_direction(pattern, edge)
            fk = edge.orm_edge.foreign_key
            if child_id == node.id:
                for col in fk.columns:
                    add(col)
            else:
                for col in fk.ref_columns:
                    add(col)
        relation_name = node.relation
        for condition in node.conditions:
            if condition.relation == relation_name:
                add(condition.attribute)
        for aggregate in node.aggregates:
            if aggregate.relation == relation_name:
                add(aggregate.attribute)
        for groupby in node.groupbys:
            if groupby.relation == relation_name:
                for attr in groupby.attributes:
                    add(attr)
        for proj_relation, proj_attr in node.projections:
            if proj_relation == relation_name:
                add(proj_attr)

        force_distinct = False
        if self.dedup_relationships and node.type is RelationType.RELATIONSHIP:
            connected = len(pattern.adjacent_object_like(node.id))
            participants = len(self.graph.object_like_neighbors(node.orm_node))
            force_distinct = connected < participants
            if force_distinct and node.aggregates:
                # an aggregate on the relationship node denotes the
                # relationship instances themselves: keep its full
                # identifier so the DISTINCT projection never collapses
                # distinct instances ({Java COUNT Enrol} counts enrolments,
                # not courses).  GROUPBY/condition annotations keep the
                # object-deduplicating projection ({COUNT Student GROUPBY
                # Grade} counts distinct students per grade).
                schema = self.graph.schema.relation(node.relation)
                for col in schema.primary_key:
                    add(col)
        return needed, force_distinct

    def _edge_direction(self, pattern: QueryPattern, edge) -> Tuple[int, int]:
        """(child node id, parent node id) for a pattern edge: the child
        side holds the foreign key."""
        child_orm = self.graph.node_of_relation(edge.orm_edge.child_relation).name
        first = pattern.node(edge.first)
        if first.orm_node == child_orm:
            return edge.first, edge.second
        return edge.second, edge.first

    def _attribute_qualifier(
        self,
        node: PatternNode,
        relation: str,
        aliases: Dict[int, str],
        component_aliases: Dict[Tuple[int, str], str],
    ) -> str:
        if relation == node.relation:
            return aliases[node.id]
        return component_aliases[(node.id, relation)]

    def _add_component_relations(
        self,
        pattern: QueryPattern,
        aliases: Dict[int, str],
        component_aliases: Dict[Tuple[int, str], str],
        from_items: List[FromItem],
        predicates: List[Expr],
    ) -> None:
        """Join component relations whose attributes are referenced."""
        for node in pattern.nodes:
            referenced: List[str] = []
            for condition in node.conditions:
                if condition.relation != node.relation:
                    referenced.append(condition.relation)
            for aggregate in node.aggregates:
                if aggregate.relation != node.relation:
                    referenced.append(aggregate.relation)
            for groupby in node.groupbys:
                if groupby.relation != node.relation:
                    referenced.append(groupby.relation)
            for relation in dict.fromkeys(referenced):
                if (node.id, relation) in component_aliases:
                    continue
                alias = f"{relation[0].upper()}c{node.id}"
                component_aliases[(node.id, relation)] = alias
                from_items.append(TableRef(relation, alias))
                component_schema = self.graph.schema.relation(relation)
                fks = [
                    fk
                    for fk in component_schema.foreign_keys
                    if fk.ref_table == node.relation
                ]
                if not fks:
                    raise SchemaError(
                        f"component relation {relation!r} has no foreign key to "
                        f"{node.relation!r}"
                    )
                for child_col, parent_col in zip(fks[0].columns, fks[0].ref_columns):
                    predicates.append(
                        eq(
                            ColumnRef(child_col, alias),
                            ColumnRef(parent_col, aliases[node.id]),
                        )
                    )

    def _projection(
        self,
        pattern: QueryPattern,
        aliases: Dict[int, str],
        component_aliases: Dict[Tuple[int, str], str],
    ) -> Tuple[List[SelectItem], List[Expr]]:
        select_items: List[SelectItem] = []
        group_by: List[Expr] = []
        used_aliases: Dict[str, int] = {}

        for node in pattern.nodes:
            for groupby in node.groupbys:
                qualifier = self._attribute_qualifier(
                    node, groupby.relation, aliases, component_aliases
                )
                for attr in groupby.attributes:
                    ref = ColumnRef(attr, qualifier)
                    group_by.append(ref)
                    select_items.append(SelectItem(ref))

        for node in pattern.nodes:
            for aggregate in node.aggregates:
                qualifier = self._attribute_qualifier(
                    node, aggregate.relation, aliases, component_aliases
                )
                alias = aggregate.alias
                if alias in used_aliases:
                    used_aliases[alias] += 1
                    alias = f"{alias}_{used_aliases[alias]}"
                else:
                    used_aliases[alias] = 1
                select_items.append(
                    SelectItem(
                        FuncCall(
                            aggregate.func,
                            (ColumnRef(aggregate.attribute, qualifier),),
                        ),
                        alias=alias,
                    )
                )
        if not select_items:
            # plain query (no operators): project the search targets — the
            # attributes named by bare metadata terms — and, when none were
            # named, the condition attributes ([15]'s target nodes).
            # {Green George Code} becomes SELECT DISTINCT C1.Code ...
            for node in pattern.nodes:
                for proj_relation, proj_attr in node.projections:
                    qualifier = self._attribute_qualifier(
                        node, proj_relation, aliases, component_aliases
                    )
                    select_items.append(
                        SelectItem(ColumnRef(proj_attr, qualifier))
                    )
            if not select_items:
                for node in pattern.nodes:
                    for condition in node.conditions:
                        qualifier = self._attribute_qualifier(
                            node, condition.relation, aliases, component_aliases
                        )
                        select_items.append(
                            SelectItem(ColumnRef(condition.attribute, qualifier))
                        )
        return select_items, group_by

    def _wrap_nested(self, pattern: QueryPattern, select: Select) -> Select:
        """Wrap nested aggregate chains in outer queries (Section 3.2)."""
        chains: List[Tuple[Tuple[str, ...], str]] = []
        used_aliases: Dict[str, int] = {}
        for node in pattern.nodes:
            for aggregate in node.aggregates:
                alias = aggregate.alias
                if alias in used_aliases:
                    used_aliases[alias] += 1
                    alias = f"{alias}_{used_aliases[alias]}"
                else:
                    used_aliases[alias] = 1
                if aggregate.outer_chain:
                    chains.append((aggregate.outer_chain, alias))
        depth = max((len(chain) for chain, _ in chains), default=0)
        current = select
        for level in range(depth):
            items: List[SelectItem] = []
            next_chains: List[Tuple[Tuple[str, ...], str]] = []
            for chain, alias in chains:
                if len(chain) <= level:
                    continue
                func = chain[len(chain) - 1 - level]
                new_alias = f"{func.lower()}{alias}"
                items.append(
                    SelectItem(FuncCall(func, (ColumnRef(alias),)), alias=new_alias)
                )
                next_chains.append((chain, new_alias))
            derived_alias = f"R{level + 1}"
            current = Select(
                items=tuple(items),
                from_items=(DerivedTable(current, derived_alias),),
            )
            chains = next_chains
        return current
