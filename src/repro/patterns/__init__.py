"""Query patterns: model, generation, disambiguation, ranking, translation."""

from repro.patterns.disambiguator import disambiguate_all, disambiguate_pattern
from repro.patterns.generator import PatternGenerator, TerminalSpec, aggregate_alias
from repro.patterns.pattern import (
    AggregateAnnotation,
    Condition,
    GroupByAnnotation,
    PatternEdge,
    PatternNode,
    QueryPattern,
)
from repro.patterns.ranker import pattern_score, rank_patterns, top_k
from repro.patterns.translator import (
    NormalizedSourceProvider,
    PatternTranslator,
    SourceProvider,
)

__all__ = [
    "AggregateAnnotation",
    "Condition",
    "GroupByAnnotation",
    "NormalizedSourceProvider",
    "PatternEdge",
    "PatternGenerator",
    "PatternNode",
    "PatternTranslator",
    "QueryPattern",
    "SourceProvider",
    "TerminalSpec",
    "aggregate_alias",
    "disambiguate_all",
    "disambiguate_pattern",
    "pattern_score",
    "rank_patterns",
    "top_k",
]
