"""Annotated query patterns.

A query pattern is a minimal connected graph whose nodes represent the
objects/relationships referred to by a query's basic terms (Section 2.1).
Operators annotate nodes: ``COUNT(Code)`` on a Course node, ``GROUPBY(Sid)``
on a Student node.  Nested aggregates (Section 3.2) hang an *outer chain*
off a node annotation: for ``{AVG COUNT Lecturer GROUPBY Course}`` the
Lecturer node carries ``COUNT(Lid)`` with outer chain ``(AVG,)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.orm.classify import RelationType
from repro.orm.graph import OrmEdge


@dataclass(frozen=True)
class Condition:
    """A selection on a node: ``attribute contains phrase`` or, when
    ``value`` is set, the exact equality ``attribute = value`` (numeric
    terms match numeric columns exactly, not by substring).

    ``relation`` owns the attribute (a component relation when the attribute
    is multivalued); ``distinct_objects`` is how many distinct objects carry
    the value — the input to pattern disambiguation.
    """

    relation: str
    attribute: str
    phrase: str
    distinct_objects: int = 0
    value: object = None


@dataclass(frozen=True)
class AggregateAnnotation:
    """``func(attribute)`` on a node, with optional nested outer functions.

    ``alias`` names the aggregate's output column (``numCode``); the outer
    chain is applied outermost-last in ``outer_chain`` order, e.g.
    ``outer_chain=("AVG",)`` wraps the whole statement in
    ``SELECT AVG(alias)``.
    """

    func: str
    relation: str
    attribute: str
    alias: str
    outer_chain: Tuple[str, ...] = ()


@dataclass(frozen=True)
class GroupByAnnotation:
    """``GROUPBY(attributes)`` on a node.

    ``attributes`` is usually one attribute; it is the full identifier
    (possibly composite) when the annotation distinguishes objects with the
    same value (pattern disambiguation).  ``from_disambiguation`` records
    which of the two sources (explicit GROUPBY term vs disambiguation)
    produced it.
    """

    relation: str
    attributes: Tuple[str, ...]
    from_disambiguation: bool = False


class PatternNode:
    """One node of a query pattern: an instance of an ORM node."""

    def __init__(
        self,
        node_id: int,
        orm_node: str,
        relation: str,
        node_type: RelationType,
    ) -> None:
        self.id = node_id
        self.orm_node = orm_node
        self.relation = relation
        self.type = node_type
        self.conditions: List[Condition] = []
        self.aggregates: List[AggregateAnnotation] = []
        self.groupbys: List[GroupByAnnotation] = []
        # attributes the user asked to see (plain, non-aggregate queries):
        # (owning relation, attribute) pairs from metadata terms without an
        # operator, e.g. Code in {Green George Code}
        self.projections: List[Tuple[str, str]] = []

    @property
    def is_object_like(self) -> bool:
        return self.type in (RelationType.OBJECT, RelationType.MIXED)

    @property
    def is_target(self) -> bool:
        """Target nodes carry aggregate annotations (Section 3.1.2); in a
        plain query (no aggregates anywhere) projected attributes mark the
        search target instead ([15])."""
        return bool(self.aggregates)

    @property
    def has_projections(self) -> bool:
        return bool(self.projections)

    @property
    def is_condition(self) -> bool:
        """Condition nodes carry conditions or GROUPBY annotations."""
        return bool(self.conditions) or bool(self.groupbys)

    def describe(self) -> str:
        parts = [self.orm_node]
        for condition in self.conditions:
            parts.append(f"{condition.attribute}~'{condition.phrase}'")
        for aggregate in self.aggregates:
            chain = "".join(f"{f}(" for f in aggregate.outer_chain)
            closers = ")" * len(aggregate.outer_chain)
            parts.append(f"{chain}{aggregate.func}({aggregate.attribute}){closers}")
        for groupby in self.groupbys:
            tagged = "*" if groupby.from_disambiguation else ""
            parts.append(f"GROUPBY{tagged}({', '.join(groupby.attributes)})")
        for __, attribute in self.projections:
            parts.append(f"->{attribute}")
        return "[" + " ".join(parts) + "]"

    def signature(self) -> Tuple:
        return (
            self.orm_node,
            tuple(sorted((c.attribute, c.phrase) for c in self.conditions)),
            tuple(
                sorted(
                    (a.func, a.attribute, a.outer_chain) for a in self.aggregates
                )
            ),
            tuple(
                sorted(
                    (g.attributes, g.from_disambiguation) for g in self.groupbys
                )
            ),
            tuple(sorted(self.projections)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PatternNode({self.id}, {self.describe()})"


@dataclass(frozen=True)
class PatternEdge:
    """An edge between two pattern nodes, labelled with the ORM edge whose
    foreign key joins them."""

    first: int
    second: int
    orm_edge: OrmEdge

    def other(self, node_id: int) -> int:
        return self.second if node_id == self.first else self.first


class QueryPattern:
    """A connected, annotated query pattern."""

    def __init__(self) -> None:
        self.nodes: List[PatternNode] = []
        self.edges: List[PatternEdge] = []
        self.tag_exactness: float = 1.0  # product of tag scores, for ranking

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self, orm_node: str, relation: str, node_type: RelationType
    ) -> PatternNode:
        node = PatternNode(len(self.nodes), orm_node, relation, node_type)
        self.nodes.append(node)
        return node

    def add_edge(self, first: int, second: int, orm_edge: OrmEdge) -> PatternEdge:
        edge = PatternEdge(first, second, orm_edge)
        self.edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> PatternNode:
        return self.nodes[node_id]

    def neighbors(self, node_id: int) -> List[int]:
        result = []
        for edge in self.edges:
            if edge.first == node_id:
                result.append(edge.second)
            elif edge.second == node_id:
                result.append(edge.first)
        return result

    def adjacent_object_like(self, node_id: int) -> List[PatternNode]:
        """Object/mixed pattern nodes directly connected to *node_id* — the
        set ``Nu`` used by the translator's duplicate-elimination test."""
        return [
            self.nodes[other]
            for other in self.neighbors(node_id)
            if self.nodes[other].is_object_like
        ]

    def edges_of(self, node_id: int) -> List[PatternEdge]:
        return [
            edge for edge in self.edges if node_id in (edge.first, edge.second)
        ]

    def is_connected(self) -> bool:
        if not self.nodes:
            return False
        seen = {self.nodes[0].id}
        queue = deque([self.nodes[0].id])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == len(self.nodes)

    def distance(self, source: int, target: int) -> Optional[int]:
        """Hop distance between two pattern nodes."""
        if source == target:
            return 0
        seen = {source}
        queue = deque([(source, 0)])
        while queue:
            current, depth = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor == target:
                    return depth + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append((neighbor, depth + 1))
        return None

    # ------------------------------------------------------------------
    # Node classes for ranking
    # ------------------------------------------------------------------
    def target_nodes(self) -> List[PatternNode]:
        return [node for node in self.nodes if node.is_target]

    def condition_nodes(self) -> List[PatternNode]:
        return [node for node in self.nodes if node.is_condition and not node.is_target]

    def object_like_count(self) -> int:
        return sum(1 for node in self.nodes if node.is_object_like)

    @property
    def distinguishes(self) -> bool:
        """True when any node groups by its identifier to distinguish
        same-valued objects (disambiguated variant)."""
        return any(
            groupby.from_disambiguation
            for node in self.nodes
            for groupby in node.groupbys
        )

    # ------------------------------------------------------------------
    # Identity / rendering
    # ------------------------------------------------------------------
    def signature(self) -> Tuple:
        """Structural identity used to deduplicate generated patterns."""
        node_sigs = tuple(sorted(node.signature() for node in self.nodes))
        # edges as sorted pairs of node signatures (coarse but effective)
        edge_sigs = tuple(
            sorted(
                tuple(
                    sorted(
                        (
                            self.nodes[edge.first].signature(),
                            self.nodes[edge.second].signature(),
                        )
                    )
                )
                for edge in self.edges
            )
        )
        return (node_sigs, edge_sigs)

    def copy(self) -> "QueryPattern":
        clone = QueryPattern()
        clone.tag_exactness = self.tag_exactness
        for node in self.nodes:
            new_node = clone.add_node(node.orm_node, node.relation, node.type)
            new_node.conditions = list(node.conditions)
            new_node.aggregates = list(node.aggregates)
            new_node.groupbys = list(node.groupbys)
            new_node.projections = list(node.projections)
        for edge in self.edges:
            clone.add_edge(edge.first, edge.second, edge.orm_edge)
        return clone

    def describe(self) -> str:
        """One-line rendering: nodes with annotations, then edges."""
        nodes = " ".join(node.describe() for node in self.nodes)
        edges = ", ".join(
            f"{self.nodes[e.first].orm_node}#{e.first}--"
            f"{self.nodes[e.second].orm_node}#{e.second}"
            for e in self.edges
        )
        return f"{nodes} | {edges}" if edges else nodes

    def render_tree(self) -> str:
        """Multi-line ASCII rendering of the pattern graph.

        The pattern is rooted at its first target node (or the first node)
        and drawn as an indented tree; back-edges that would revisit a node
        (patterns can contain cycles through shared nodes, as in Figure 4)
        are shown as ``^`` references.
        """
        if not self.nodes:
            return "(empty pattern)"
        root = self.target_nodes()[0].id if self.target_nodes() else self.nodes[0].id
        lines: List[str] = []
        visited: set = set()

        def walk(node_id: int, prefix: str, is_last: bool, is_root: bool) -> None:
            node = self.nodes[node_id]
            connector = "" if is_root else ("`-- " if is_last else "|-- ")
            lines.append(f"{prefix}{connector}{node.describe()}")
            visited.add(node_id)
            children = [n for n in self.neighbors(node_id)]
            extension = "" if is_root else ("    " if is_last else "|   ")
            fresh = [c for c in children if c not in visited]
            seen = [c for c in children if c in visited and not is_root]
            for index, child in enumerate(fresh):
                walk(
                    child,
                    prefix + extension,
                    index == len(fresh) - 1 and not False,
                    False,
                )

        walk(root, "", True, True)
        # disconnected remnants (should not happen for valid patterns)
        for node in self.nodes:
            if node.id not in visited:
                walk(node.id, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryPattern({self.describe()})"
