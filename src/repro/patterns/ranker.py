"""Query-pattern ranking (Section 3.1.2).

Following [15], a pattern is ranked by (1) its number of object/mixed nodes
and (2) the average pattern-graph distance between target nodes (aggregate
annotations) and condition nodes (conditions or GROUPBY annotations) —
fewer object nodes and shorter distances rank higher.  Ties are broken by
tag exactness (exact metadata matches beat fuzzy ones), total node count,
and finally a deterministic signature, so ranking is stable across runs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.observability import NULL_TRACER
from repro.patterns.pattern import QueryPattern


def pattern_score(pattern: QueryPattern) -> Tuple:
    """Sort key: smaller is better."""
    targets = pattern.target_nodes()
    conditions = [node for node in pattern.nodes if node.is_condition]
    distances: List[int] = []
    for target in targets:
        for condition in conditions:
            if condition.id == target.id:
                continue
            distance = pattern.distance(target.id, condition.id)
            if distance is not None:
                distances.append(distance)
    average_distance = sum(distances) / len(distances) if distances else 0.0
    return (
        pattern.object_like_count(),
        average_distance,
        -pattern.tag_exactness,
        len(pattern.nodes),
        repr(pattern.signature()),
    )


def rank_patterns(
    patterns: Sequence[QueryPattern], tracer=NULL_TRACER
) -> List[QueryPattern]:
    """Patterns sorted best-first; disambiguation variants stay adjacent to
    their base pattern because they share every score component."""
    tracer.count("patterns_ranked", len(patterns))
    return sorted(patterns, key=pattern_score)


def top_k(patterns: Sequence[QueryPattern], k: int) -> List[QueryPattern]:
    return rank_patterns(patterns)[:k]
