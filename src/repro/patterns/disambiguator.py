"""Pattern disambiguation (Section 3.1.2, Algorithm 3 lines 13-23).

An object/mixed node annotated with a condition ``a = t`` may be satisfied
by several distinct objects (two students named Green).  Each such node
doubles the pattern set: one variant aggregates over *all* matching objects,
the other adds ``GROUPBY(identifier)`` so the aggregate is computed *per
distinct object*.  SQAK has only the first variant, which is where its
wrong answers come from.
"""

from __future__ import annotations

from typing import List, Optional

from repro.keywords.matcher import Catalog
from repro.observability import NULL_TRACER
from repro.patterns.pattern import GroupByAnnotation, PatternNode, QueryPattern


def disambiguate_pattern(
    pattern: QueryPattern, catalog: Optional[Catalog] = None
) -> List[QueryPattern]:
    """All disambiguation variants of *pattern* (the undistinguished
    original first).

    When *catalog* is given, the distinct-object count of a condition is
    re-checked against the data; otherwise the count recorded on the
    condition (from matching) is trusted.
    """
    variants: List[QueryPattern] = [pattern]
    if not any(node.aggregates for node in pattern.nodes):
        # disambiguation chooses *what an aggregate ranges over*; a plain
        # query (no aggregate anywhere) already returns objects themselves
        return variants
    for node in pattern.nodes:
        if not node.is_object_like:
            continue
        if any(g.from_disambiguation for g in node.groupbys):
            continue  # already distinguished
        if catalog is not None:
            identifier = set(catalog.graph.node(node.orm_node).identifier)
            if any(set(g.attributes) == identifier for g in node.groupbys):
                continue  # an explicit GROUPBY(id) already distinguishes
        multi_conditions = [
            condition
            for condition in node.conditions
            if _distinct_objects(condition, node, catalog) > 1
        ]
        if not multi_conditions:
            continue
        forked: List[QueryPattern] = []
        for variant in variants:
            clone = variant.copy()
            clone_node = clone.node(node.id)
            identifier = tuple(
                _identifier_of(clone_node, catalog or None, pattern)
            )
            clone_node.groupbys = clone_node.groupbys + [
                GroupByAnnotation(
                    clone_node.relation, identifier, from_disambiguation=True
                )
            ]
            forked.append(clone)
        variants.extend(forked)
    return variants


def _distinct_objects(condition, node: PatternNode, catalog: Optional[Catalog]) -> int:
    if condition.value is not None:
        # exact numeric match: the substring-based catalog probe would be
        # wrong, and the count from matching is already exact
        return condition.distinct_objects
    if catalog is not None:
        return catalog.distinct_object_count(
            condition.relation, condition.attribute, condition.phrase
        )
    return condition.distinct_objects


def _identifier_of(node: PatternNode, catalog, pattern: QueryPattern):
    """The identifier attributes of the node's main relation.

    Resolved lazily through the pattern's nodes so that the disambiguator
    works on patterns whose catalog is unavailable (pure unit tests).
    """
    if catalog is not None:
        return catalog.graph.node(node.orm_node).identifier
    # fall back: GROUPBY over nothing would be wrong, so at minimum group by
    # the condition attribute's relation key is required; tests always pass a
    # catalog, this branch exists for defensive completeness
    raise ValueError("disambiguation requires a catalog to resolve identifiers")


def disambiguate_all(
    patterns: List[QueryPattern],
    catalog: Optional[Catalog] = None,
    tracer=NULL_TRACER,
) -> List[QueryPattern]:
    """Disambiguate every pattern, deduplicating by signature."""
    result: List[QueryPattern] = []
    seen = set()
    for pattern in patterns:
        for variant in disambiguate_pattern(pattern, catalog):
            signature = variant.signature()
            if signature in seen:
                tracer.count("variants_deduped")
                continue
            seen.add(signature)
            result.append(variant)
    tracer.count("patterns_disambiguated", len(patterns))
    tracer.count("variants_added", len(result) - len(patterns))
    return result
