"""Normalized 3NF view of an unnormalized database (Section 4, Algorithm 1).

Given the stored (possibly denormalized) relations and their functional
dependencies, this module synthesizes the minimal set of 3NF *view
relations*, merging same-key relations across the whole database, and keeps
the mapping between each view relation and the stored relations that can
reconstruct it (*fragments*).  The ORM schema graph of an unnormalized
database is built over this view, so pattern generation and annotation work
unchanged; only translation differs (fragments become subqueries) — exactly
the architecture of Algorithm 2, lines 14-26.

Naming: a view relation keeps its stored relation's name when that relation
was already in 3NF; synthesized fragments get a deterministic
``<source>_<key>`` name unless the caller supplies *name hints* (a mapping
from key-attribute sets to names).  Hints matter because keyword queries
match relation names: the TPC-H denormalizer knows the ``orderkey``-keyed
fragment of ``Ordering`` represents orders and names it ``Order``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import NormalizationError
from repro.fd.functional_dependency import FunctionalDependency, parse_fds
from repro.fd.normal_forms import is_3nf
from repro.fd.synthesis import synthesize_3nf
from repro.keywords.matcher import Catalog, ValueHit
from repro.orm.graph import OrmSchemaGraph
from repro.relational.database import Database
from repro.relational.schema import Column, DatabaseSchema, ForeignKey, RelationSchema


@dataclass(frozen=True)
class Fragment:
    """One way to obtain (part of) a view relation from a stored relation:
    ``project(source, attributes)``."""

    source: str
    attributes: Tuple[str, ...]

    def covers(self, needed: Iterable[str]) -> bool:
        return set(needed) <= set(self.attributes)


class ViewRelation:
    """A relation of the normalized view with its reconstruction fragments."""

    def __init__(
        self,
        name: str,
        columns: Tuple[Column, ...],
        key: Tuple[str, ...],
        fragments: List[Fragment],
    ) -> None:
        self.name = name
        self.columns = columns
        self.key = key
        self.fragments = fragments

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def fragments_covering(self, needed: Iterable[str]) -> List[Fragment]:
        return [frag for frag in self.fragments if frag.covers(needed)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ViewRelation({self.name!r}, key={self.key}, "
            f"fragments={[f.source for f in self.fragments]})"
        )


FdSpec = Mapping[str, Sequence]  # relation -> FDs (objects or "A -> B" text)
NameHints = Mapping[FrozenSet[str], str]


def _coerce_fds(spec: Optional[FdSpec], relation: RelationSchema) -> List[FunctionalDependency]:
    """Declared FDs of a relation plus the FD implied by its primary key."""
    declared: List[FunctionalDependency] = []
    if spec and relation.name in spec:
        for item in spec[relation.name]:
            if isinstance(item, FunctionalDependency):
                declared.append(item)
            else:
                declared.append(FunctionalDependency.parse(str(item)))
    key = frozenset(relation.primary_key)
    rest = frozenset(relation.column_names) - key
    if rest:
        declared.append(FunctionalDependency(key, rest))
    return declared


def validate_declared_fds(database: Database, fds: Optional[FdSpec]) -> None:
    """Verify that every declared FD holds on the stored data.

    Raises :class:`NormalizationError` naming the first violated FD.  The
    view-building pipeline assumes declared FDs are true; a violated one
    would make the DISTINCT fragment projections collapse tuples that are
    actually distinct, corrupting aggregates.
    """
    from repro.fd.discovery import holds

    if not fds:
        return
    for relation_name, items in fds.items():
        table = database.table(relation_name)
        for item in items:
            fd = (
                item
                if isinstance(item, FunctionalDependency)
                else FunctionalDependency.parse(str(item))
            )
            if not holds(table, fd):
                raise NormalizationError(
                    f"declared FD {fd} does not hold on relation "
                    f"{relation_name!r}"
                )


def database_is_normalized(database: Database, fds: Optional[FdSpec] = None) -> bool:
    """True when every stored relation is in 3NF under its FDs."""
    for relation in database.schema:
        relation_fds = _coerce_fds(fds, relation)
        attributes = frozenset(relation.column_names)
        if not is_3nf(attributes, relation_fds):
            return False
    return True


class NormalizedView:
    """The normalized view D' of an unnormalized database D."""

    def __init__(
        self,
        database: Database,
        relations: Dict[str, ViewRelation],
        schema: DatabaseSchema,
    ) -> None:
        self.database = database
        self.relations = relations
        self.schema = schema
        self.graph = OrmSchemaGraph(schema)

    # ------------------------------------------------------------------
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: Database,
        fds: Optional[FdSpec] = None,
        name_hints: Optional[NameHints] = None,
        check_fds: bool = False,
    ) -> "NormalizedView":
        """Build the view; ``check_fds=True`` additionally verifies every
        declared FD against the stored data (a wrong FD makes fragment
        projections silently lossy, so the check fails loudly instead)."""
        if check_fds:
            validate_declared_fds(database, fds)
        hints = dict(name_hints or {})
        base_schema = database.schema

        # 1-8: normalize each stored relation into 3NF pieces
        pieces: List[Tuple[Tuple[str, ...], Tuple[str, ...], str]] = []
        # each piece: (attributes ordered, key ordered, source relation)
        for relation in base_schema:
            relation_fds = _coerce_fds(fds, relation)
            attributes = frozenset(relation.column_names)
            if is_3nf(attributes, relation_fds):
                pieces.append(
                    (relation.column_names, relation.primary_key, relation.name)
                )
                continue
            for decomposed in synthesize_3nf(attributes, relation_fds):
                ordered_attrs = tuple(
                    name
                    for name in relation.column_names
                    if name in decomposed.attributes
                )
                ordered_key = tuple(
                    name for name in ordered_attrs if name in decomposed.key
                )
                pieces.append((ordered_attrs, ordered_key, relation.name))

        # 9-11: merge pieces with the same key (across the whole database)
        merged: Dict[FrozenSet[str], Dict] = {}
        order: List[FrozenSet[str]] = []
        for attrs, key, source in pieces:
            key_set = frozenset(key)
            if key_set not in merged:
                merged[key_set] = {
                    "attrs": list(attrs),
                    "key": key,
                    "fragments": [],
                }
                order.append(key_set)
            entry = merged[key_set]
            for attr in attrs:
                if attr not in entry["attrs"]:
                    entry["attrs"].append(attr)
            entry["fragments"].append(Fragment(source, attrs))

        # build view relations with names and column types
        relations: Dict[str, ViewRelation] = {}
        used_names: Set[str] = set()
        for key_set in order:
            entry = merged[key_set]
            name = cls._pick_name(
                key_set, entry, base_schema, hints, used_names
            )
            used_names.add(name)
            columns = tuple(
                cls._column_type(base_schema, entry["fragments"], attr)
                for attr in entry["attrs"]
            )
            relations[name] = ViewRelation(
                name, columns, tuple(entry["key"]), list(entry["fragments"])
            )

        schema = cls._build_schema(base_schema.name + "_view", relations)
        return cls(database, relations, schema)

    @staticmethod
    def _pick_name(
        key_set: FrozenSet[str],
        entry: Dict,
        base_schema: DatabaseSchema,
        hints: Dict[FrozenSet[str], str],
        used: Set[str],
    ) -> str:
        if key_set in hints and hints[key_set] not in used:
            return hints[key_set]
        # a piece that is exactly an original 3NF relation keeps its name
        for fragment in entry["fragments"]:
            source = base_schema.relation(fragment.source)
            if (
                set(fragment.attributes) == set(source.column_names)
                and frozenset(source.primary_key) == key_set
                and source.name not in used
            ):
                return source.name
        source_name = entry["fragments"][0].source
        candidate = f"{source_name}_{'_'.join(entry['key'])}"
        suffix = 2
        name = candidate
        while name in used:
            name = f"{candidate}_{suffix}"
            suffix += 1
        return name

    @staticmethod
    def _column_type(
        base_schema: DatabaseSchema, fragments: List[Fragment], attr: str
    ) -> Column:
        for fragment in fragments:
            source = base_schema.relation(fragment.source)
            if source.has_column(attr):
                return source.column(attr)
        raise NormalizationError(f"no source column for view attribute {attr!r}")

    @staticmethod
    def _build_schema(
        name: str, relations: Dict[str, ViewRelation]
    ) -> DatabaseSchema:
        """Logical schema of the view, with foreign keys inferred by key
        containment: V references W when W's key attributes all appear in V
        (denormalization preserves attribute names, so name-based inference
        is sound for views built from it)."""
        schema = DatabaseSchema(name)
        key_owner: Dict[FrozenSet[str], str] = {
            frozenset(rel.key): rel.name for rel in relations.values()
        }
        for rel in relations.values():
            foreign_keys = []
            for other in relations.values():
                if other.name == rel.name:
                    continue
                other_key = set(other.key)
                if other_key == set(rel.key):
                    continue
                if other_key <= set(rel.column_names):
                    foreign_keys.append(
                        ForeignKey(tuple(other.key), other.name, tuple(other.key))
                    )
            schema.add_relation(
                rel.name,
                [(col.name, col.dtype) for col in rel.columns],
                rel.key,
                foreign_keys,
            )
        schema.validate()
        return schema

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def relation(self, name: str) -> ViewRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise NormalizationError(f"no view relation {name!r}") from None

    def owners_of_attribute(
        self, source: str, attribute: str
    ) -> List[ViewRelation]:
        """View relations that can own a value match on
        ``source.attribute``, best owner first: a relation identified by the
        attribute (single-attribute key) beats one merely containing it, and
        non-key ownership beats incidental foreign-key occurrence."""
        candidates: List[Tuple[int, str, ViewRelation]] = []
        for rel in self.relations.values():
            if attribute not in rel.column_names:
                continue
            if not any(f.source == source for f in rel.fragments):
                continue
            if rel.key == (attribute,):
                rank = 0
            elif attribute not in rel.key:
                rank = 1
            else:
                rank = 2
            candidates.append((rank, rel.name, rel))
        candidates.sort(key=lambda item: (item[0], item[1]))
        best_rank = candidates[0][0] if candidates else None
        return [rel for rank, _, rel in candidates if rank == best_rank]

    def describe(self) -> str:
        lines = [f"normalized view of {self.database.schema.name!r}:"]
        for rel in self.relations.values():
            frags = ", ".join(
                f"pi_{{{','.join(f.attributes)}}}({f.source})" for f in rel.fragments
            )
            lines.append(
                f"  {rel.name}({', '.join(rel.column_names)}) key={rel.key} = {frags}"
            )
        return "\n".join(lines)


class ViewCatalog(Catalog):
    """Catalog over the normalized view: metadata matching against view
    relations, value matching against the stored database mapped into the
    view (Algorithm 2, lines 15-19)."""

    def __init__(self, view: NormalizedView) -> None:
        super().__init__(view.graph)
        self.view = view

    def value_matches(self, phrase: str) -> List[ValueHit]:
        hits: List[ValueHit] = []
        seen: Set[Tuple[str, str]] = set()
        for match in self.view.database.text_index.match_phrase(phrase):
            for owner in self.view.owners_of_attribute(match.relation, match.attribute):
                slot = (owner.name, match.attribute)
                if slot in seen:
                    continue
                seen.add(slot)
                count = self.distinct_object_count(
                    owner.name, match.attribute, phrase
                )
                hits.append(ValueHit(owner.name, match.attribute, count))
        for match in self.view.database.numeric_index.match_number(phrase):
            value = float(phrase)
            if value.is_integer():
                value = int(value)
            for owner in self.view.owners_of_attribute(match.relation, match.attribute):
                slot = (owner.name, match.attribute)
                if slot in seen:
                    continue
                seen.add(slot)
                count = self._distinct_count_exact(owner, match.attribute, value)
                hits.append(
                    ValueHit(owner.name, match.attribute, count, value=value)
                )
        hits.sort(key=lambda hit: (hit.relation, hit.attribute))
        return hits

    def _distinct_count_exact(
        self, view_rel: ViewRelation, attribute: str, value
    ) -> int:
        """Distinct view identifiers among stored tuples with
        ``attribute == value`` (numeric matches)."""
        needed = set(view_rel.key) | {attribute}
        fragments = view_rel.fragments_covering(needed)
        if not fragments:
            return 0
        fragment = fragments[0]
        table = self.view.database.table(fragment.source)
        attr_idx = table.schema.column_index(attribute)
        key_idx = [table.schema.column_index(col) for col in view_rel.key]
        ids = {
            tuple(row[i] for i in key_idx)
            for row in table.rows
            if row[attr_idx] is not None and float(row[attr_idx]) == float(value)
        }
        return len(ids)

    def value_completions(self, prefix: str, limit: int = 10) -> List[str]:
        return self.view.database.text_index.tokens_with_prefix(prefix, limit)

    def distinct_object_count(
        self, relation: str, attribute: str, phrase: str
    ) -> int:
        """Distinct view-relation identifiers among stored tuples whose
        attribute contains the phrase."""
        view_rel = self.view.relation(relation)
        needed = set(view_rel.key) | {attribute}
        fragments = view_rel.fragments_covering(needed)
        if not fragments:
            return 0
        fragment = fragments[0]
        table = self.view.database.table(fragment.source)
        attr_idx = table.schema.column_index(attribute)
        key_idx = [table.schema.column_index(col) for col in view_rel.key]
        needle = phrase.lower()
        ids = {
            tuple(row[i] for i in key_idx)
            for row in table.rows
            if row[attr_idx] is not None and needle in str(row[attr_idx]).lower()
        }
        return len(ids)
