"""Unnormalized databases: normalized 3NF view, fragment provider, rewriter."""

from repro.unnormalized.provider import FragmentUse, UnnormalizedSourceProvider
from repro.unnormalized.rewriter import (
    apply_rule1,
    apply_rule2,
    apply_rule3,
    referenced_columns,
    rewrite,
    rewrite_qualifiers,
)
from repro.unnormalized.view import (
    Fragment,
    NormalizedView,
    ViewCatalog,
    ViewRelation,
    database_is_normalized,
    validate_declared_fds,
)

__all__ = [
    "Fragment",
    "FragmentUse",
    "NormalizedView",
    "UnnormalizedSourceProvider",
    "ViewCatalog",
    "ViewRelation",
    "apply_rule1",
    "apply_rule2",
    "apply_rule3",
    "database_is_normalized",
    "referenced_columns",
    "rewrite",
    "rewrite_qualifiers",
    "validate_declared_fds",
]
