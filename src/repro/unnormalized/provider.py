"""Source provider for unnormalized databases.

Maps each pattern node (over a normalized-view relation) to SQL against the
stored relations: a projection subquery over one fragment when possible, or
a join of several fragment projections when no single stored relation covers
the needed attributes (merged view relations like the Figure-2 Department).

Projections add ``DISTINCT`` exactly when they do not retain a key of the
stored relation — this is what removes the duplication introduced by
denormalization (Example 9: Student' and Course' get DISTINCT, Enrol' does
not because ``(Sid, Code)`` is Enrolment's key).

The provider records a :class:`FragmentUse` for every simple projection it
emits; the rewriter's Rule 3 consumes that metadata to collapse fragment
joins back into the stored relation (Example 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NormalizationError
from repro.patterns.pattern import PatternNode
from repro.patterns.translator import SourceProvider
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    FromItem,
    Select,
    SelectItem,
    TableRef,
    eq,
)
from repro.unnormalized.view import Fragment, NormalizedView, ViewRelation


@dataclass(frozen=True)
class FragmentUse:
    """Metadata about one emitted fragment projection (for Rule 3)."""

    alias: str
    source: str
    attributes: Tuple[str, ...]
    view_key: Tuple[str, ...]
    distinct: bool


class UnnormalizedSourceProvider(SourceProvider):
    """Provider reading pattern nodes from normalized-view fragments.

    ``naive=True`` skips attribute pruning (every fragment attribute is
    projected) — the input shape the paper's rewrite Rule 1 targets, kept
    for the rewrite ablation benchmark.
    """

    def __init__(self, view: NormalizedView, naive: bool = False) -> None:
        self.view = view
        self.naive = naive
        self.fragment_uses: Dict[str, FragmentUse] = {}

    def reset(self) -> None:
        self.fragment_uses = {}

    # ------------------------------------------------------------------
    def from_item(
        self,
        node: PatternNode,
        needed_attrs: Sequence[str],
        force_distinct: bool,
        alias: str,
    ) -> FromItem:
        view_rel = self.view.relation(node.relation)
        needed: List[str] = list(needed_attrs)
        if not force_distinct:
            # keep the identifier so projections never collapse distinct
            # objects that share non-key values
            for attr in view_rel.key:
                if attr not in needed:
                    needed.insert(0, attr)
        if not needed:
            needed = list(view_rel.key)

        single = view_rel.fragments_covering(needed)
        if single:
            # prefer a fragment that is an entire stored relation (cheap
            # scan, often no DISTINCT) over a projection of a wide
            # denormalized relation; ties break on source name
            def preference(fragment: Fragment):
                source = self.view.database.schema.relation(fragment.source)
                is_whole = set(fragment.attributes) == set(source.column_names)
                keeps_key = set(fragment.attributes) >= set(source.primary_key)
                return (not is_whole, not keeps_key, fragment.source)

            best = min(single, key=preference)
            return self._single_fragment_item(
                view_rel, best, needed, force_distinct, alias
            )
        return self._joined_fragments_item(view_rel, needed, force_distinct, alias)

    # ------------------------------------------------------------------
    def _single_fragment_item(
        self,
        view_rel: ViewRelation,
        fragment: Fragment,
        needed: Sequence[str],
        force_distinct: bool,
        alias: str,
    ) -> FromItem:
        source_schema = self.view.database.schema.relation(fragment.source)
        projected = self._projection_attrs(fragment, needed)
        distinct = force_distinct or not (
            set(projected) >= set(source_schema.primary_key)
        )
        if (
            not distinct
            and set(projected) == set(source_schema.column_names)
        ):
            # the fragment is the whole stored relation: read it directly
            self.fragment_uses[alias] = FragmentUse(
                alias,
                fragment.source,
                tuple(source_schema.column_names),
                view_rel.key,
                distinct=False,
            )
            return TableRef(fragment.source, alias)
        projection = Select(
            items=tuple(SelectItem(ColumnRef(attr)) for attr in projected),
            from_items=(TableRef.of(fragment.source),),
            distinct=distinct,
        )
        self.fragment_uses[alias] = FragmentUse(
            alias, fragment.source, tuple(projected), view_rel.key, distinct
        )
        return DerivedTable(projection, alias)

    def _projection_attrs(
        self, fragment: Fragment, needed: Sequence[str]
    ) -> List[str]:
        if self.naive:
            return list(fragment.attributes)
        # preserve the fragment's deterministic attribute order
        needed_set = set(needed)
        return [attr for attr in fragment.attributes if attr in needed_set]

    def _joined_fragments_item(
        self,
        view_rel: ViewRelation,
        needed: Sequence[str],
        force_distinct: bool,
        alias: str,
    ) -> FromItem:
        """Cover *needed* with several fragments joined on the view key."""
        remaining = [attr for attr in needed if attr not in view_rel.key]
        chosen: List[Fragment] = []
        for fragment in view_rel.fragments:
            covered = [attr for attr in remaining if attr in fragment.attributes]
            if covered:
                chosen.append(fragment)
                remaining = [attr for attr in remaining if attr not in covered]
            if not remaining:
                break
        if remaining:
            raise NormalizationError(
                f"view relation {view_rel.name!r} cannot provide attributes "
                f"{remaining}"
            )
        if not chosen:
            chosen = [view_rel.fragments[0]]

        inner_items: List[FromItem] = []
        predicates = []
        provided: Dict[str, str] = {}
        for index, fragment in enumerate(chosen):
            frag_alias = f"F{index + 1}"
            attrs = [
                attr
                for attr in fragment.attributes
                if attr in set(needed) | set(view_rel.key)
            ]
            for attr in view_rel.key:
                if attr not in attrs:
                    attrs.append(attr)
            source_schema = self.view.database.schema.relation(fragment.source)
            distinct = not (set(attrs) >= set(source_schema.primary_key))
            projection = Select(
                items=tuple(SelectItem(ColumnRef(attr)) for attr in attrs),
                from_items=(TableRef.of(fragment.source),),
                distinct=distinct,
            )
            inner_items.append(DerivedTable(projection, frag_alias))
            if index > 0:
                for key_attr in view_rel.key:
                    predicates.append(
                        eq(ColumnRef(key_attr, "F1"), ColumnRef(key_attr, frag_alias))
                    )
            for attr in attrs:
                provided.setdefault(attr, frag_alias)

        items = tuple(
            SelectItem(ColumnRef(attr, provided[attr]), alias=attr)
            for attr in needed
        )
        joined = Select(
            items=items,
            from_items=tuple(inner_items),
            where=Select.conjunction(predicates),
            distinct=force_distinct,
        )
        return DerivedTable(joined, alias)
