"""SQL rewriting for unnormalized databases (Section 4.1, Rules 1-3).

The translated SQL for an unnormalized database joins fragment subqueries,
which is slow (no indexes on derived tables).  Three heuristics rewrite it:

* **Rule 3** — a set of fragment subqueries of the same stored relation,
  joined losslessly (each join equates a key of one side) and together
  covering a superkey, is replaced by the stored relation itself
  (Example 10: ``C' x E1' x S1' -> Enrolment R1``).
* **Rule 1** — projected attributes never referenced by the outer statement
  are dropped from the remaining subqueries (the fragment's identifying key
  is kept so DISTINCT granularity never changes).
* **Rule 2** — ``contains`` conditions on a subquery's output are pushed
  into the subquery so rows are filtered before the join.

Rule 3 runs first (it removes subqueries wholesale), then Rules 1 and 2
clean up the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.observability import NULL_TRACER
from repro.relational.schema import DatabaseSchema
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.unnormalized.provider import FragmentUse


# ----------------------------------------------------------------------
# Expression utilities
# ----------------------------------------------------------------------
def rewrite_qualifiers(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Replace column-reference qualifiers according to *mapping*."""
    if isinstance(expr, ColumnRef):
        if expr.qualifier in mapping:
            return ColumnRef(expr.name, mapping[expr.qualifier])
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            rewrite_qualifiers(expr.left, mapping),
            rewrite_qualifiers(expr.right, mapping),
        )
    if isinstance(expr, Contains):
        return Contains(rewrite_qualifiers(expr.column, mapping), expr.phrase)
    if isinstance(expr, IsNull):
        return IsNull(rewrite_qualifiers(expr.operand, mapping), expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(rewrite_qualifiers(arg, mapping) for arg in expr.args),
            expr.distinct,
        )
    return expr


def referenced_columns(select: Select, alias: str) -> Set[str]:
    """Column names referenced through *alias* anywhere in *select* (not
    inside its subqueries)."""
    names: Set[str] = set()

    def scan(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        for node in expr.walk():
            if isinstance(node, ColumnRef) and node.qualifier == alias:
                names.add(node.name)

    for item in select.items:
        scan(item.expr)
    scan(select.where)
    for expr in select.group_by:
        scan(expr)
    for order in select.order_by:
        scan(order.expr)
    return names


# ----------------------------------------------------------------------
# Rule 3: replace fragment joins with the stored relation
# ----------------------------------------------------------------------
@dataclass
class _Unit:
    """A group of fragment uses to be merged into one stored-relation scan."""

    aliases: List[str]
    source: str
    attributes: Set[str]


def _equated_attrs(conjunct: Expr) -> Optional[Tuple[str, str, str]]:
    """(left alias, right alias, attribute) for a same-name equality."""
    if (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
        and conjunct.left.name == conjunct.right.name
        and conjunct.left.qualifier
        and conjunct.right.qualifier
    ):
        return conjunct.left.qualifier, conjunct.right.qualifier, conjunct.left.name
    return None


def apply_rule3(
    select: Select,
    fragment_uses: Dict[str, FragmentUse],
    base_schema: DatabaseSchema,
) -> Select:
    """Collapse lossless fragment joins into the stored relation."""
    conjuncts = select.where_conjuncts()
    # join edges between fragment uses of the same source
    edges: Dict[Tuple[str, str], Set[str]] = {}
    for conjunct in conjuncts:
        equated = _equated_attrs(conjunct)
        if equated is None:
            continue
        left, right, attr = equated
        if left not in fragment_uses or right not in fragment_uses:
            continue
        if fragment_uses[left].source != fragment_uses[right].source:
            continue
        key = tuple(sorted((left, right)))
        edges.setdefault(key, set()).add(attr)

    from_aliases = [item.alias for item in select.from_items]
    unit_of: Dict[str, _Unit] = {}
    units: List[_Unit] = []
    merged_roles: Dict[int, Set[Tuple[str, ...]]] = {}

    for alias in from_aliases:
        if alias not in fragment_uses or alias in unit_of:
            continue
        use = fragment_uses[alias]
        unit = _Unit([alias], use.source, set(use.attributes))
        roles: Set[Tuple[str, ...]] = {use.attributes}
        # grow the unit greedily along lossless join edges
        changed = True
        while changed:
            changed = False
            for other in from_aliases:
                if other in unit_of or other in unit.aliases:
                    continue
                other_use = fragment_uses.get(other)
                if other_use is None or other_use.source != unit.source:
                    continue
                if other_use.attributes in roles:
                    continue  # one use per projection role (self-joins stay)
                for member in unit.aliases:
                    pair = tuple(sorted((member, other)))
                    shared = edges.get(pair)
                    if not shared:
                        continue
                    member_key = set(fragment_uses[member].view_key)
                    other_key = set(other_use.view_key)
                    if shared >= member_key or shared >= other_key:
                        unit.aliases.append(other)
                        unit.attributes |= set(other_use.attributes)
                        roles.add(other_use.attributes)
                        changed = True
                        break
        if len(unit.aliases) >= 2:
            source_key = set(base_schema.relation(unit.source).primary_key)
            if unit.attributes >= source_key:
                units.append(unit)
                for member in unit.aliases:
                    unit_of[member] = unit

    if not units:
        return select

    # build alias remapping and new FROM list
    mapping: Dict[str, str] = {}
    replacement_alias: Dict[int, str] = {}
    counter = 0
    for unit in units:
        counter += 1
        new_alias = f"U{counter}"
        replacement_alias[id(unit)] = new_alias
        for member in unit.aliases:
            mapping[member] = new_alias

    new_from: List[FromItem] = []
    emitted: Set[int] = set()
    for item in select.from_items:
        unit = unit_of.get(item.alias)
        if unit is None:
            new_from.append(item)
            continue
        if id(unit) in emitted:
            continue
        emitted.add(id(unit))
        new_from.append(TableRef(unit.source, replacement_alias[id(unit)]))

    # drop join conditions internal to a unit, remap the rest
    new_conjuncts: List[Expr] = []
    for conjunct in conjuncts:
        equated = _equated_attrs(conjunct)
        if equated is not None:
            left, right, _ = equated
            if (
                left in unit_of
                and right in unit_of
                and unit_of[left] is unit_of[right]
            ):
                continue
        new_conjuncts.append(rewrite_qualifiers(conjunct, mapping))

    return Select(
        items=tuple(
            SelectItem(rewrite_qualifiers(item.expr, mapping), item.alias)
            for item in select.items
        ),
        from_items=tuple(new_from),
        where=Select.conjunction(new_conjuncts),
        group_by=tuple(rewrite_qualifiers(expr, mapping) for expr in select.group_by),
        order_by=tuple(
            OrderItem(rewrite_qualifiers(order.expr, mapping), order.descending)
            for order in select.order_by
        ),
        limit=select.limit,
        distinct=select.distinct,
    )


# ----------------------------------------------------------------------
# Rule 1: prune unused projected attributes
# ----------------------------------------------------------------------
def apply_rule1(
    select: Select, fragment_uses: Dict[str, FragmentUse]
) -> Select:
    """Drop subquery output columns the outer statement never references.

    The fragment's view key is always retained: dropping it from a DISTINCT
    projection would change deduplication granularity and thus aggregate
    results.
    """
    new_from: List[FromItem] = []
    for item in select.from_items:
        use = fragment_uses.get(item.alias)
        if (
            use is None
            or not isinstance(item, DerivedTable)
            or not _is_simple_projection(item.select)
        ):
            new_from.append(item)
            continue
        used = referenced_columns(select, item.alias) | set(use.view_key)
        kept = tuple(
            sub_item
            for sub_item in item.select.items
            if isinstance(sub_item.expr, ColumnRef) and sub_item.expr.name in used
        )
        if not kept or len(kept) == len(item.select.items):
            new_from.append(item)
            continue
        new_from.append(
            DerivedTable(replace(item.select, items=kept), item.alias)
        )
    return replace(select, from_items=tuple(new_from))


def _is_simple_projection(select: Select) -> bool:
    return (
        len(select.from_items) == 1
        and isinstance(select.from_items[0], TableRef)
        and select.where is None
        and not select.group_by
        and all(isinstance(item.expr, ColumnRef) for item in select.items)
    )


# ----------------------------------------------------------------------
# Rule 2: push contains-conditions into subqueries
# ----------------------------------------------------------------------
def apply_rule2(select: Select) -> Select:
    """Move ``alias.a contains t`` into the subquery bound to *alias*."""
    derived = {
        item.alias: item
        for item in select.from_items
        if isinstance(item, DerivedTable)
    }
    pushed: Dict[str, List[Expr]] = {}
    remaining: List[Expr] = []
    for conjunct in select.where_conjuncts():
        if (
            isinstance(conjunct, Contains)
            and isinstance(conjunct.column, ColumnRef)
            and conjunct.column.qualifier in derived
        ):
            alias = conjunct.column.qualifier
            item = derived[alias]
            projects = {
                sub.output_name(default="")
                for sub in item.select.items
            }
            if conjunct.column.name in projects and _is_pushable(item.select):
                pushed.setdefault(alias, []).append(
                    Contains(ColumnRef(conjunct.column.name), conjunct.phrase)
                )
                continue
        remaining.append(conjunct)
    if not pushed:
        return select
    new_from: List[FromItem] = []
    for item in select.from_items:
        if isinstance(item, DerivedTable) and item.alias in pushed:
            inner = item.select
            predicates = inner.where_conjuncts() + pushed[item.alias]
            new_from.append(
                DerivedTable(
                    replace(inner, where=Select.conjunction(predicates)),
                    item.alias,
                )
            )
        else:
            new_from.append(item)
    return replace(
        select,
        from_items=tuple(new_from),
        where=Select.conjunction(remaining),
    )


def _is_pushable(select: Select) -> bool:
    """Conditions may be pushed into plain projections (no grouping)."""
    return not select.group_by and not select.items[0].expr.contains_aggregate()


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
def rewrite(
    select: Select,
    fragment_uses: Dict[str, FragmentUse],
    base_schema: DatabaseSchema,
    tracer=NULL_TRACER,
) -> Select:
    """Apply Rules 3, 1, 2 (in that order) to one SELECT level.

    Nested levels produced by nested-aggregate wrapping are rewritten
    recursively.
    """
    inner_rewritten: List[FromItem] = []
    changed = False
    for item in select.from_items:
        if isinstance(item, DerivedTable) and item.select.has_aggregates():
            # a nested-aggregate inner query: rewrite it recursively
            new_inner = rewrite(item.select, fragment_uses, base_schema, tracer=tracer)
            inner_rewritten.append(DerivedTable(new_inner, item.alias))
            changed = changed or new_inner is not item.select
        else:
            inner_rewritten.append(item)
    if changed:
        select = replace(select, from_items=tuple(inner_rewritten))

    fragments_before = sum(
        1 for item in select.from_items if item.alias in fragment_uses
    )
    select = apply_rule3(select, fragment_uses, base_schema)
    fragments_after = sum(
        1 for item in select.from_items if item.alias in fragment_uses
    )
    if fragments_before > fragments_after:
        tracer.count("fragments_collapsed", fragments_before - fragments_after)
    select = apply_rule1(select, fragment_uses)
    select = apply_rule2(select)
    tracer.count("rewrites")
    return select
