"""Synthetic ACM Digital Library dataset over the paper's schema (Table 2).

The real ACMDL dump is proprietary; the evaluation only needs its
value-collision structure, which this seeded generator plants:

* several editors share the last name ``Smith`` (A3) and several authors the
  last name ``Gill`` (A4) — SQAK mixes them, the semantic engine
  distinguishes them by identifier;
* six papers whose titles contain ``database tuning`` but only four distinct
  title strings (A5: SQAK groups by title and returns 4 answers, the
  semantic engine returns 6);
* a SIGMOD proceedings series (A2), SIGIR/CIKM series with shared editors
  (A8), publishers whose names contain ``IEEE`` (A6);
* authors named John and Mary with co-authored papers (A7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Set, Tuple

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT
DATE = DataType.DATE

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry",
    "Irene", "Jack", "Karen", "Leo", "Nina", "Oscar", "Paula", "Quentin",
]
_LAST_NAMES = [
    "Adams", "Baker", "Clark", "Davis", "Evans", "Foster", "Garcia",
    "Hughes", "Irving", "Jones", "Keller", "Lopez", "Morris", "Nolan",
]
_TITLE_WORDS = [
    "scalable", "adaptive", "distributed", "streaming", "probabilistic",
    "indexing", "transactions", "graphs", "learning", "queries", "storage",
    "privacy", "ranking", "caching", "workloads", "optimization",
]
_PUBLISHERS = [
    ("ACM", "ACM Press"),
    ("SPR", "Springer"),
    ("ELS", "Elsevier"),
    ("MKP", "Morgan Kaufmann"),
    ("WIL", "Wiley"),
    ("OUP", "Oxford University Press"),
    ("CUP", "Cambridge University Press"),
    ("NOW", "Now Publishers"),
]
_IEEE_PUBLISHERS = [
    ("IEE", "IEEE"),
    ("IEC", "IEEE Computer Society"),
    ("IEP", "IEEE Press"),
    ("IES", "IEEE Communications Society"),
]

# paper A5: six matching papers, four distinct title strings, author counts
# 2, 2, 2, 6, 2, 2 (the paper's exact answer multiset)
_TUNING_TITLES = [
    "database tuning techniques",
    "database tuning techniques",
    "database tuning",
    "advanced database tuning",
    "database tuning in practice",
    "database tuning in practice",
]
_TUNING_AUTHOR_COUNTS = [2, 2, 2, 6, 2, 2]


@dataclass(frozen=True)
class AcmdlConfig:
    """Scale knobs and planted-shape counts."""

    seed: int = 7
    authors: int = 120
    editors: int = 60
    papers: int = 500
    proceedings_per_series: int = 8
    smith_editors: int = 7
    gill_authors: int = 6
    john_authors: int = 4
    mary_authors: int = 3

    def scaled(self, sf: float) -> "AcmdlConfig":
        """This config with its organic row-count knobs multiplied by
        *sf* (>= 1); planted value-collision counts stay fixed."""
        if sf < 1:
            raise ValueError(f"scale factor must be >= 1, got {sf!r}")
        return replace(
            self,
            authors=round(self.authors * sf),
            editors=round(self.editors * sf),
            papers=round(self.papers * sf),
        )


def acmdl_schema() -> DatabaseSchema:
    """The paper's ACMDL schema (Table 2)."""
    schema = DatabaseSchema("acmdl")
    schema.add_relation(
        "Publisher",
        [("publisherid", INT), ("code", TEXT), ("name", TEXT)],
        ["publisherid"],
    )
    schema.add_relation(
        "Proceeding",
        [
            ("procid", INT),
            ("acronym", TEXT),
            ("title", TEXT),
            ("date", DATE),
            ("pages", INT),
            ("publisherid", INT),
        ],
        ["procid"],
        [ForeignKey(("publisherid",), "Publisher", ("publisherid",))],
    )
    schema.add_relation(
        "Paper",
        [("paperid", INT), ("procid", INT), ("date", DATE), ("ptitle", TEXT)],
        ["paperid"],
        [ForeignKey(("procid",), "Proceeding", ("procid",))],
    )
    schema.add_relation(
        "Author",
        [("authorid", INT), ("fname", TEXT), ("lname", TEXT)],
        ["authorid"],
    )
    schema.add_relation(
        "Editor",
        [("editorid", INT), ("fname", TEXT), ("lname", TEXT)],
        ["editorid"],
    )
    schema.add_relation(
        "Write",
        [("paperid", INT), ("authorid", INT)],
        ["paperid", "authorid"],
        [
            ForeignKey(("paperid",), "Paper", ("paperid",)),
            ForeignKey(("authorid",), "Author", ("authorid",)),
        ],
    )
    schema.add_relation(
        "Edit",
        [("editorid", INT), ("procid", INT)],
        ["editorid", "procid"],
        [
            ForeignKey(("editorid",), "Editor", ("editorid",)),
            ForeignKey(("procid",), "Proceeding", ("procid",)),
        ],
    )
    return schema


def generate(config: AcmdlConfig = AcmdlConfig()) -> Database:
    """Generate a deterministic ACMDL database with planted shapes."""
    rng = random.Random(config.seed)
    db = Database(acmdl_schema())

    publishers = [
        (i + 1, code, name)
        for i, (code, name) in enumerate(_IEEE_PUBLISHERS + _PUBLISHERS)
    ]
    db.load("Publisher", publishers)
    ieee_ids = list(range(1, len(_IEEE_PUBLISHERS) + 1))
    publisher_ids = [row[0] for row in publishers]

    # ------------------------------------------------------------------
    # Proceedings: series x years
    # ------------------------------------------------------------------
    series = ["SIGMOD", "SIGIR", "CIKM", "VLDB", "ICDE", "EDBT"]
    proceedings: List[Tuple[int, str, str, str, int, int]] = []
    series_procs: Dict[str, List[int]] = {name: [] for name in series}
    procid = 0
    for name in series:
        for year_index in range(config.proceedings_per_series):
            procid += 1
            year = 2000 + year_index
            # IEEE publishers host ICDE; others rotate
            if name == "ICDE":
                publisher = ieee_ids[year_index % len(ieee_ids)]
            else:
                publisher = publisher_ids[(procid + year_index) % len(publisher_ids)]
            proceedings.append(
                (
                    procid,
                    f"{name} {year}",
                    f"Proceedings of {name} {year}",
                    f"{year}-{rng.randint(3, 11):02d}-{rng.randint(1, 28):02d}",
                    rng.randint(200, 1400),
                    publisher,
                )
            )
            series_procs[name].append(procid)
    db.load("Proceeding", proceedings)
    all_procids = [row[0] for row in proceedings]
    proc_date = {row[0]: row[3] for row in proceedings}

    # ------------------------------------------------------------------
    # Authors and editors, with planted names
    # ------------------------------------------------------------------
    authors: List[Tuple[int, str, str]] = []
    authorid = 0

    def add_author(fname: str, lname: str) -> int:
        nonlocal authorid
        authorid += 1
        authors.append((authorid, fname, lname))
        return authorid

    gill_ids = [
        add_author(rng.choice(_FIRST_NAMES), "Gill")
        for _ in range(config.gill_authors)
    ]
    john_ids = [
        add_author("John", rng.choice(_LAST_NAMES))
        for _ in range(config.john_authors)
    ]
    mary_ids = [
        add_author("Mary", rng.choice(_LAST_NAMES))
        for _ in range(config.mary_authors)
    ]
    while len(authors) < config.authors:
        add_author(rng.choice(_FIRST_NAMES), rng.choice(_LAST_NAMES))
    db.load("Author", authors)
    all_author_ids = [row[0] for row in authors]

    editors: List[Tuple[int, str, str]] = []
    editorid = 0

    def add_editor(fname: str, lname: str) -> int:
        nonlocal editorid
        editorid += 1
        editors.append((editorid, fname, lname))
        return editorid

    smith_ids = [
        add_editor(rng.choice(_FIRST_NAMES), "Smith")
        for _ in range(config.smith_editors)
    ]
    while len(editors) < config.editors:
        add_editor(rng.choice(_FIRST_NAMES), rng.choice(_LAST_NAMES))
    db.load("Editor", editors)
    all_editor_ids = [row[0] for row in editors]

    # ------------------------------------------------------------------
    # Papers, with the planted "database tuning" titles
    # ------------------------------------------------------------------
    papers: List[Tuple[int, int, str, str]] = []
    paperid = 0

    def add_paper(proc: int, title: str) -> int:
        nonlocal paperid
        paperid += 1
        base_date = proc_date[proc]
        papers.append((paperid, proc, base_date, title))
        return paperid

    tuning_ids = [
        add_paper(rng.choice(all_procids), title) for title in _TUNING_TITLES
    ]
    while len(papers) < config.papers:
        words = rng.sample(_TITLE_WORDS, 3)
        add_paper(rng.choice(all_procids), " ".join(words))
    db.load("Paper", papers)
    all_paper_ids = [row[0] for row in papers]
    papers_of_proc: Dict[int, List[int]] = {}
    for pid, proc, _, _ in papers:
        papers_of_proc.setdefault(proc, []).append(pid)

    # ------------------------------------------------------------------
    # Write: authorship
    # ------------------------------------------------------------------
    write: Set[Tuple[int, int]] = set()

    def add_write(paper: int, author: int) -> None:
        write.add((paper, author))

    # planted exact author counts for the tuning papers (A5: 2,2,2,6,2,2)
    for paper, count in zip(tuning_ids, _TUNING_AUTHOR_COUNTS):
        for author in rng.sample(all_author_ids, count):
            add_write(paper, author)

    # planted: John/Mary co-authorships (A7) and Gill papers (A4) avoid the
    # tuning papers so A5's planted author counts stay exact
    non_tuning_papers = [pid for pid in all_paper_ids if pid not in tuning_ids]
    for john in john_ids:
        for mary in rng.sample(mary_ids, rng.randint(1, len(mary_ids))):
            for _ in range(rng.randint(1, 3)):
                paper = rng.choice(non_tuning_papers)
                add_write(paper, john)
                add_write(paper, mary)

    for gill in gill_ids:
        for _ in range(rng.randint(2, 5)):
            add_write(rng.choice(non_tuning_papers), gill)

    # organic authorship: every other paper gets 1-4 authors (the tuning
    # papers keep their planted counts 2,2,2,6,2,2 — the paper's exact A5
    # answer multiset)
    for paper in all_paper_ids:
        if paper in tuning_ids:
            continue
        for author in rng.sample(all_author_ids, rng.randint(1, 4)):
            add_write(paper, author)
    db.load("Write", sorted(write))

    # ------------------------------------------------------------------
    # Edit: editorship
    # ------------------------------------------------------------------
    edit: Set[Tuple[int, int]] = set()

    def add_edit(editor: int, proc: int) -> None:
        edit.add((editor, proc))

    # planted: each Smith edits proceedings (A3); drawn outside the
    # SIGIR/CIKM series so A8's shared-editor count stays the planted 2
    non_pair_procids = [
        procid
        for name in series
        if name not in ("SIGIR", "CIKM")
        for procid in series_procs[name]
    ]
    for smith in smith_ids:
        for _ in range(rng.randint(1, 3)):
            add_edit(smith, rng.choice(non_pair_procids))

    # planted: two editors edit both a SIGIR and a CIKM proceeding (A8)
    for editor, sigir, cikm in [
        (all_editor_ids[-1], series_procs["SIGIR"][0], series_procs["CIKM"][0]),
        (all_editor_ids[-2], series_procs["SIGIR"][1], series_procs["CIKM"][1]),
    ]:
        add_edit(editor, sigir)
        add_edit(editor, cikm)

    # organic editorship: every proceeding gets 1-3 editors, drawn from a
    # per-series slice of the community so SIGIR/CIKM editors only overlap
    # through the planted pairs (A8's answer stays the planted 2)
    pool_size = max(4, (len(all_editor_ids) - 2) // len(series))
    proc_pages = {row[0]: row[4] for row in proceedings}
    for series_index, name in enumerate(series):
        offset = (series_index * pool_size) % (len(all_editor_ids) - pool_size - 2)
        pool = all_editor_ids[offset : offset + pool_size]
        for proc in series_procs[name]:
            # longer proceedings get more editors: the correlation makes
            # AVG(pages) over the denormalized EditorProceeding visibly
            # larger than the true average (the Table 9 effect for A1)
            count = min(len(pool), 1 + proc_pages[proc] // 450)
            for editor in rng.sample(pool, count):
                add_edit(editor, proc)
    db.load("Edit", sorted(edit))

    db.check_foreign_keys()
    return db
