"""The running-example university databases from the paper.

Three variants are provided:

* :func:`university_database` — the normalized database of Figure 1
  (Student, Course, Enrol, Lecturer, Teach, Textbook, Department, Faculty).
* :func:`unnormalized_lecturer_database` — Figure 2: Lecturer denormalized
  with a redundant ``Fid`` foreign key to Faculty.
* :func:`enrolment_database` — Figure 8: the single unnormalized
  ``Enrolment`` relation (Student x Enrol x Course), violating 2NF.

These exact tuples back every worked example in the paper (Q1-Q5,
Examples 1-10), so the integration tests assert the paper's numbers
literally: total credits 5 and 8 for the two Greens, textbook total 25 for
Java, one CS department in Engineering, etc.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
FLOAT = DataType.FLOAT
TEXT = DataType.TEXT


def university_schema() -> DatabaseSchema:
    """Schema of the normalized university database (Figure 1)."""
    schema = DatabaseSchema("university")
    schema.add_relation(
        "Student",
        [("Sid", TEXT), ("Sname", TEXT), ("Age", INT)],
        ["Sid"],
    )
    schema.add_relation(
        "Course",
        [("Code", TEXT), ("Title", TEXT), ("Credit", FLOAT)],
        ["Code"],
    )
    schema.add_relation(
        "Enrol",
        [("Sid", TEXT), ("Code", TEXT), ("Grade", TEXT)],
        ["Sid", "Code"],
        [
            ForeignKey(("Sid",), "Student", ("Sid",)),
            ForeignKey(("Code",), "Course", ("Code",)),
        ],
    )
    schema.add_relation(
        "Textbook",
        [("Bid", TEXT), ("Tname", TEXT), ("Price", FLOAT)],
        ["Bid"],
    )
    schema.add_relation(
        "Faculty",
        [("Fid", TEXT), ("Fname", TEXT)],
        ["Fid"],
    )
    schema.add_relation(
        "Department",
        [("Did", TEXT), ("Dname", TEXT), ("Fid", TEXT)],
        ["Did"],
        [ForeignKey(("Fid",), "Faculty", ("Fid",))],
    )
    schema.add_relation(
        "Lecturer",
        [("Lid", TEXT), ("Lname", TEXT), ("Did", TEXT)],
        ["Lid"],
        [ForeignKey(("Did",), "Department", ("Did",))],
    )
    schema.add_relation(
        "Teach",
        [("Code", TEXT), ("Lid", TEXT), ("Bid", TEXT)],
        ["Code", "Lid", "Bid"],
        [
            ForeignKey(("Code",), "Course", ("Code",)),
            ForeignKey(("Lid",), "Lecturer", ("Lid",)),
            ForeignKey(("Bid",), "Textbook", ("Bid",)),
        ],
    )
    return schema


_STUDENTS = [
    ("s1", "George", 22),
    ("s2", "Green", 24),
    ("s3", "Green", 21),
]

_COURSES = [
    ("c1", "Java", 5.0),
    ("c2", "Database", 4.0),
    ("c3", "Multimedia", 3.0),
]

_ENROLS = [
    ("s1", "c1", "A"),
    ("s1", "c2", "B"),
    ("s1", "c3", "B"),
    ("s2", "c1", "A"),
    ("s3", "c1", "A"),
    ("s3", "c3", "B"),
]

_TEXTBOOKS = [
    ("b1", "Programming Language", 10.0),
    ("b2", "Discrete Mathematics", 15.0),
    ("b3", "Database Management", 12.0),
    ("b4", "Multimedia Technologies", 20.0),
]

_FACULTIES = [("f1", "Engineering")]

_DEPARTMENTS = [("d1", "CS", "f1")]

_LECTURERS = [
    ("l1", "Steven", "d1"),
    ("l2", "George", "d1"),
]

_TEACHES = [
    ("c1", "l1", "b1"),
    ("c1", "l1", "b2"),
    ("c1", "l2", "b1"),
    ("c2", "l1", "b2"),
    ("c2", "l1", "b3"),
    ("c3", "l2", "b4"),
]


def university_database() -> Database:
    """The normalized university database of Figure 1, fully populated."""
    db = Database(university_schema())
    db.load("Student", _STUDENTS)
    db.load("Course", _COURSES)
    db.load("Enrol", _ENROLS)
    db.load("Textbook", _TEXTBOOKS)
    db.load("Faculty", _FACULTIES)
    db.load("Department", _DEPARTMENTS)
    db.load("Lecturer", _LECTURERS)
    db.load("Teach", _TEACHES)
    db.check_foreign_keys()
    return db


def unnormalized_lecturer_schema() -> DatabaseSchema:
    """Figure 2: Lecturer carries a redundant FK to Faculty."""
    schema = DatabaseSchema("university_fig2")
    schema.add_relation("Faculty", [("Fid", TEXT), ("Fname", TEXT)], ["Fid"])
    schema.add_relation(
        "Department",
        [("Did", TEXT), ("Dname", TEXT)],
        ["Did"],
    )
    schema.add_relation(
        "Lecturer",
        [("Lid", TEXT), ("Lname", TEXT), ("Did", TEXT), ("Fid", TEXT)],
        ["Lid"],
        [
            ForeignKey(("Did",), "Department", ("Did",)),
            ForeignKey(("Fid",), "Faculty", ("Fid",)),
        ],
    )
    return schema


def unnormalized_lecturer_database() -> Database:
    """The unnormalized database of Figure 2."""
    db = Database(unnormalized_lecturer_schema())
    db.load("Faculty", [("f1", "Engineering")])
    db.load("Department", [("d1", "CS")])
    db.load(
        "Lecturer",
        [("l1", "Steven", "d1", "f1"), ("l2", "George", "d1", "f1")],
    )
    db.check_foreign_keys()
    return db


def enrolment_schema() -> DatabaseSchema:
    """Figure 8: the single unnormalized Enrolment relation."""
    schema = DatabaseSchema("university_fig8")
    schema.add_relation(
        "Enrolment",
        [
            ("Sid", TEXT),
            ("Sname", TEXT),
            ("Age", INT),
            ("Code", TEXT),
            ("Title", TEXT),
            ("Credit", FLOAT),
            ("Grade", TEXT),
        ],
        ["Sid", "Code"],
    )
    return schema


def enrolment_database() -> Database:
    """The unnormalized Enrolment database of Figure 8."""
    db = Database(enrolment_schema())
    db.load(
        "Enrolment",
        [
            ("s1", "George", 22, "c1", "Java", 5.0, "A"),
            ("s1", "George", 22, "c2", "Database", 4.0, "B"),
            ("s1", "George", 22, "c3", "Multimedia", 3.0, "B"),
            ("s2", "Green", 24, "c1", "Java", 5.0, "A"),
            ("s3", "Green", 21, "c1", "Java", 5.0, "A"),
            ("s3", "Green", 21, "c3", "Multimedia", 3.0, "B"),
        ],
    )
    return db
