"""Denormalizers producing the unnormalized schemas of Table 7.

* :func:`denormalize_tpch` — TPCH': one wide ``Ordering`` relation
  (Lineitem x Part x Supplier x Order, plus the supplier's region), and a
  ``Customer`` widened with its nation's ``regionkey``.
* :func:`denormalize_acmdl` — ACMDL': ``PaperAuthor`` (Write x Paper x
  Author, with ``ptitle`` renamed ``title`` as in the paper) and
  ``EditorProceeding`` (Edit x Editor x Proceeding).

Each denormalizer also returns the declared functional dependencies of the
wide relations and the name hints that let the normalized view recover the
original relation names — both of which a real deployment would know, since
denormalization starts from the normalized schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.table import Row
from repro.relational.types import DataType

INT = DataType.INT
FLOAT = DataType.FLOAT
TEXT = DataType.TEXT
DATE = DataType.DATE


@dataclass(frozen=True)
class UnnormalizedDataset:
    """A denormalized database plus the metadata the engine needs."""

    database: Database
    fds: Mapping[str, Sequence[str]]
    name_hints: Mapping[frozenset, str]
    sqak_extra_joins: Sequence[Tuple[str, str, Tuple[str, ...], Tuple[str, ...]]]


def _index_by_key(db: Database, table: str) -> Dict[Tuple, Row]:
    """Primary-key -> row mapping for joins during denormalization."""
    schema = db.table(table).schema
    key_idx = [schema.column_index(col) for col in schema.primary_key]
    return {
        tuple(row[i] for i in key_idx): row for row in db.table(table).rows
    }


def denormalize_tpch(source: Database) -> UnnormalizedDataset:
    """Build TPCH' (Table 7) from a normalized TPC-H database."""
    schema = DatabaseSchema("tpch_unnorm")
    schema.add_relation(
        "Nation", [("nationkey", INT), ("nname", TEXT)], ["nationkey"]
    )
    schema.add_relation(
        "Region", [("regionkey", INT), ("rname", TEXT)], ["regionkey"]
    )
    schema.add_relation(
        "Customer",
        [
            ("custkey", INT),
            ("cname", TEXT),
            ("nationkey", INT),
            ("regionkey", INT),
            ("mktsegment", TEXT),
        ],
        ["custkey"],
        [
            ForeignKey(("nationkey",), "Nation", ("nationkey",)),
            ForeignKey(("regionkey",), "Region", ("regionkey",)),
        ],
    )
    schema.add_relation(
        "Ordering",
        [
            ("partkey", INT),
            ("suppkey", INT),
            ("orderkey", INT),
            ("pname", TEXT),
            ("type", TEXT),
            ("size", INT),
            ("retailprice", FLOAT),
            ("sname", TEXT),
            ("nationkey", INT),
            ("regionkey", INT),
            ("acctbal", FLOAT),
            ("custkey", INT),
            ("amount", FLOAT),
            ("date", DATE),
            ("priority", TEXT),
            ("quantity", INT),
        ],
        ["partkey", "suppkey", "orderkey"],
        [
            ForeignKey(("custkey",), "Customer", ("custkey",)),
            ForeignKey(("nationkey",), "Nation", ("nationkey",)),
            ForeignKey(("regionkey",), "Region", ("regionkey",)),
        ],
    )
    db = Database(schema)

    nations = _index_by_key(source, "Nation")
    parts = _index_by_key(source, "Part")
    suppliers = _index_by_key(source, "Supplier")
    orders = _index_by_key(source, "Order")

    db.load("Nation", [(n[0], n[1]) for n in source.table("Nation").rows])
    db.load("Region", list(source.table("Region").rows))
    db.load(
        "Customer",
        [
            (c[0], c[1], c[2], nations[(c[2],)][2], c[3])
            for c in source.table("Customer").rows
        ],
    )
    ordering_rows = []
    for partkey, suppkey, orderkey, quantity in source.table("Lineitem").rows:
        part = parts[(partkey,)]
        supplier = suppliers[(suppkey,)]
        order = orders[(orderkey,)]
        nation = nations[(supplier[2],)]
        ordering_rows.append(
            (
                partkey,
                suppkey,
                orderkey,
                part[1],  # pname
                part[2],  # type
                part[3],  # size
                part[4],  # retailprice
                supplier[1],  # sname
                supplier[2],  # nationkey
                nation[2],  # regionkey
                supplier[3],  # acctbal
                order[1],  # custkey
                order[2],  # amount
                order[3],  # date
                order[4],  # priority
                quantity,
            )
        )
    db.load("Ordering", ordering_rows)
    db.check_foreign_keys()

    fds = {
        "Ordering": [
            "partkey -> pname, type, size, retailprice",
            "suppkey -> sname, nationkey, acctbal",
            "nationkey -> regionkey",
            "orderkey -> custkey, amount, date, priority",
        ],
        "Customer": ["nationkey -> regionkey"],
    }
    name_hints = {
        frozenset({"partkey"}): "Part",
        frozenset({"suppkey"}): "Supplier",
        frozenset({"orderkey"}): "Order",
        frozenset({"custkey"}): "Customer",
        frozenset({"nationkey"}): "Nation",
        frozenset({"partkey", "suppkey", "orderkey"}): "Lineitem",
    }
    return UnnormalizedDataset(db, fds, name_hints, sqak_extra_joins=())


def denormalize_acmdl(source: Database) -> UnnormalizedDataset:
    """Build ACMDL' (Table 7) from a normalized ACMDL database."""
    schema = DatabaseSchema("acmdl_unnorm")
    schema.add_relation(
        "Publisher",
        [("publisherid", INT), ("code", TEXT), ("name", TEXT)],
        ["publisherid"],
    )
    schema.add_relation(
        "PaperAuthor",
        [
            ("paperid", INT),
            ("authorid", INT),
            ("procid", INT),
            ("date", DATE),
            ("title", TEXT),
            ("fname", TEXT),
            ("lname", TEXT),
        ],
        ["paperid", "authorid"],
    )
    schema.add_relation(
        "EditorProceeding",
        [
            ("editorid", INT),
            ("procid", INT),
            ("fname", TEXT),
            ("lname", TEXT),
            ("acronym", TEXT),
            ("title", TEXT),
            ("date", DATE),
            ("pages", INT),
            ("publisherid", INT),
        ],
        ["editorid", "procid"],
        [ForeignKey(("publisherid",), "Publisher", ("publisherid",))],
    )
    db = Database(schema)

    papers = _index_by_key(source, "Paper")
    authors = _index_by_key(source, "Author")
    editors = _index_by_key(source, "Editor")
    proceedings = _index_by_key(source, "Proceeding")

    db.load("Publisher", list(source.table("Publisher").rows))
    db.load(
        "PaperAuthor",
        [
            (
                paperid,
                authorid,
                papers[(paperid,)][1],  # procid
                papers[(paperid,)][2],  # date
                papers[(paperid,)][3],  # ptitle -> title
                authors[(authorid,)][1],
                authors[(authorid,)][2],
            )
            for paperid, authorid in source.table("Write").rows
        ],
    )
    db.load(
        "EditorProceeding",
        [
            (
                editorid,
                procid,
                editors[(editorid,)][1],
                editors[(editorid,)][2],
                proceedings[(procid,)][1],  # acronym
                proceedings[(procid,)][2],  # title
                proceedings[(procid,)][3],  # date
                proceedings[(procid,)][4],  # pages
                proceedings[(procid,)][5],  # publisherid
            )
            for editorid, procid in source.table("Edit").rows
        ],
    )
    db.check_foreign_keys()

    fds = {
        "PaperAuthor": [
            "paperid -> procid, date, title",
            "authorid -> fname, lname",
        ],
        "EditorProceeding": [
            "editorid -> fname, lname",
            "procid -> acronym, title, date, pages, publisherid",
        ],
    }
    name_hints = {
        frozenset({"paperid"}): "Paper",
        frozenset({"authorid"}): "Author",
        frozenset({"editorid"}): "Editor",
        frozenset({"procid"}): "Proceeding",
        frozenset({"paperid", "authorid"}): "Write",
        frozenset({"editorid", "procid"}): "Edit",
    }
    extra_joins = [
        ("PaperAuthor", "EditorProceeding", ("procid",), ("procid",)),
    ]
    return UnnormalizedDataset(db, fds, name_hints, sqak_extra_joins=extra_joins)
