"""``repro gen`` — the scale-factor dataset generator.

Writes a scaled synthetic dataset to a directory in the
:mod:`repro.relational.io` layout (``schema.json`` + one CSV per
relation), loadable with ``python -m repro --db-dir DIR`` and by the
storage benchmarks::

    python -m repro gen --dataset tpch --sf 4
    python -m repro gen --dataset acmdl --sf 2 --out ./acmdl-big

Scaling multiplies the organic row-count knobs of
:class:`~repro.datasets.tpch.TpchConfig` /
:class:`~repro.datasets.acmdl.AcmdlConfig` while keeping the planted
value-collision shapes fixed, so the evaluation workload produces the
same answer shapes at every scale factor.  Generation is seeded and
deterministic: the same ``(dataset, sf, seed)`` always yields the same
bytes on disk.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from pathlib import Path
from typing import Any, List, Optional

from repro.datasets.acmdl import AcmdlConfig
from repro.datasets.acmdl import generate as generate_acmdl
from repro.datasets.tpch import TpchConfig
from repro.datasets.tpch import generate as generate_tpch
from repro.relational.database import Database
from repro.relational.io import save_database

__all__ = ["build_gen_parser", "generate_scaled", "run_gen"]

GEN_DATASETS = ("tpch", "acmdl")


def generate_scaled(
    dataset: str, sf: float = 1.0, seed: Optional[int] = None
) -> Database:
    """A scaled instance of one of the synthetic generators."""
    if dataset == "tpch":
        config: Any = TpchConfig().scaled(sf)
        generate = generate_tpch
    elif dataset == "acmdl":
        config = AcmdlConfig().scaled(sf)
        generate = generate_acmdl
    else:
        raise ValueError(f"unknown dataset {dataset!r} (want one of {GEN_DATASETS})")
    if seed is not None:
        config = replace(config, seed=seed)
    return generate(config)


def build_gen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gen",
        description=(
            "generate a scaled synthetic dataset and save it as "
            "schema.json + CSVs (see repro.relational.io)"
        ),
    )
    parser.add_argument(
        "--dataset",
        choices=GEN_DATASETS,
        default="tpch",
        help="synthetic generator to scale (default: tpch)",
    )
    parser.add_argument(
        "--sf",
        type=float,
        default=1.0,
        metavar="N",
        help="scale factor >= 1 applied to the organic row counts (default: 1)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="output directory (default: ./<dataset>-sf<N>)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the generator's default seed",
    )
    return parser


def _format_sf(sf: float) -> str:
    return str(int(sf)) if sf == int(sf) else str(sf)


def run_gen(argv: Optional[List[str]] = None, out: Any = None) -> int:
    import sys

    out = out or sys.stdout
    parser = build_gen_parser()
    args = parser.parse_args(argv)
    if args.sf < 1:
        parser.error(f"--sf must be >= 1, got {args.sf}")
    database = generate_scaled(args.dataset, sf=args.sf, seed=args.seed)
    directory = args.out or Path(f"{args.dataset}-sf{_format_sf(args.sf)}")
    save_database(database, directory)
    total = 0
    for relation in database.schema:
        count = len(database.table(relation.name))
        total += count
        print(f"{relation.name}: {count} rows", file=out)
    print(
        f"gen: {args.dataset} sf={_format_sf(args.sf)} -> {directory} "
        f"({total} rows)",
        file=out,
    )
    return 0
