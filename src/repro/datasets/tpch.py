"""Synthetic TPC-H dataset over the paper's simplified schema (Table 2).

The official TPC-H generator is unavailable offline, and the paper's
evaluation does not depend on TPC-H magnitudes — it depends on specific
*value-collision shapes* in the data.  This generator is seeded and
deterministic, and plants exactly those shapes:

* several distinct parts named ``royal olive`` (query T3: SQAK mixes them,
  the semantic engine returns one count per part);
* several distinct parts named ``yellow tomato`` (T4);
* one part ``Indian black chocolate`` supplied by few suppliers across many
  orders (T5: SQAK counts supplier-order pairs, not suppliers);
* ``pink rose`` / ``white rose`` part pairs sharing suppliers (T8:
  self-joins, which SQAK cannot generate);
* every supplier supplies each of its parts in several orders (T6: SQAK
  counts line items instead of distinct parts).

Scale is configurable; defaults keep the full evaluation under a second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Set, Tuple

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
FLOAT = DataType.FLOAT
TEXT = DataType.TEXT
DATE = DataType.DATE

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
PART_TYPES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]

# vocabulary chosen so no random combination contains a planted phrase
_ADJECTIVES = [
    "misty", "golden", "amber", "copper", "ivory", "scarlet", "cobalt",
    "emerald", "crimson", "silver", "sandy", "dusty", "pale", "deep",
]
_NOUNS = [
    "almond", "walnut", "pepper", "ginger", "saffron", "basil", "cedar",
    "maple", "willow", "orchid", "tulip", "daisy", "clover", "hazel",
]


@dataclass(frozen=True)
class TpchConfig:
    """Scale knobs and planted-shape counts for the generator."""

    seed: int = 42
    parts: int = 160
    suppliers: int = 60
    customers: int = 120
    orders: int = 900
    lineitems_per_order: Tuple[int, int] = (2, 5)
    royal_olive_parts: int = 8
    yellow_tomato_parts: int = 13
    chocolate_suppliers: int = 4
    chocolate_lineitems: int = 22

    def scaled(self, sf: float) -> "TpchConfig":
        """This config with its organic row-count knobs multiplied by
        *sf* (>= 1).

        Only the bulk knobs (parts, suppliers, customers, orders) grow;
        the planted value-collision counts stay fixed, so the workload
        answer shapes are identical at every scale factor.
        """
        if sf < 1:
            raise ValueError(f"scale factor must be >= 1, got {sf!r}")
        return replace(
            self,
            parts=round(self.parts * sf),
            suppliers=round(self.suppliers * sf),
            customers=round(self.customers * sf),
            orders=round(self.orders * sf),
        )


def tpch_schema() -> DatabaseSchema:
    """The paper's simplified TPC-H schema (Table 2)."""
    schema = DatabaseSchema("tpch")
    schema.add_relation("Region", [("regionkey", INT), ("rname", TEXT)], ["regionkey"])
    schema.add_relation(
        "Nation",
        [("nationkey", INT), ("nname", TEXT), ("regionkey", INT)],
        ["nationkey"],
        [ForeignKey(("regionkey",), "Region", ("regionkey",))],
    )
    schema.add_relation(
        "Part",
        [
            ("partkey", INT),
            ("pname", TEXT),
            ("type", TEXT),
            ("size", INT),
            ("retailprice", FLOAT),
        ],
        ["partkey"],
    )
    schema.add_relation(
        "Supplier",
        [
            ("suppkey", INT),
            ("sname", TEXT),
            ("nationkey", INT),
            ("acctbal", FLOAT),
        ],
        ["suppkey"],
        [ForeignKey(("nationkey",), "Nation", ("nationkey",))],
    )
    schema.add_relation(
        "Customer",
        [
            ("custkey", INT),
            ("cname", TEXT),
            ("nationkey", INT),
            ("mktsegment", TEXT),
        ],
        ["custkey"],
        [ForeignKey(("nationkey",), "Nation", ("nationkey",))],
    )
    schema.add_relation(
        "Order",
        [
            ("orderkey", INT),
            ("custkey", INT),
            ("amount", FLOAT),
            ("date", DATE),
            ("priority", TEXT),
        ],
        ["orderkey"],
        [ForeignKey(("custkey",), "Customer", ("custkey",))],
    )
    schema.add_relation(
        "Lineitem",
        [
            ("partkey", INT),
            ("suppkey", INT),
            ("orderkey", INT),
            ("quantity", INT),
        ],
        ["partkey", "suppkey", "orderkey"],
        [
            ForeignKey(("partkey",), "Part", ("partkey",)),
            ForeignKey(("suppkey",), "Supplier", ("suppkey",)),
            ForeignKey(("orderkey",), "Order", ("orderkey",)),
        ],
    )
    return schema


def generate(config: TpchConfig = TpchConfig()) -> Database:
    """Generate a deterministic TPC-H database with planted shapes."""
    rng = random.Random(config.seed)
    db = Database(tpch_schema())

    db.load("Region", [(i, name) for i, name in enumerate(REGIONS)])
    nations = []
    for i in range(25):
        nations.append((i, f"NATION{i:02d}", i % len(REGIONS)))
    db.load("Nation", nations)

    # ------------------------------------------------------------------
    # Parts, with planted names
    # ------------------------------------------------------------------
    parts: List[Tuple[int, str, str, int, float]] = []
    partkey = 0

    def add_part(name: str) -> int:
        nonlocal partkey
        partkey += 1
        parts.append(
            (
                partkey,
                name,
                rng.choice(PART_TYPES),
                rng.randint(1, 50),
                round(rng.uniform(5.0, 200.0), 2),
            )
        )
        return partkey

    royal_olive = [add_part("royal olive") for _ in range(config.royal_olive_parts)]
    yellow_tomato = [
        add_part("yellow tomato") for _ in range(config.yellow_tomato_parts)
    ]
    chocolate = add_part("Indian black chocolate")
    pink_roses = [add_part("pink rose") for _ in range(2)]
    white_roses = [add_part("white rose") for _ in range(2)]
    while len(parts) < config.parts:
        add_part(f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}")
    db.load("Part", parts)
    all_partkeys = [row[0] for row in parts]

    # ------------------------------------------------------------------
    # Suppliers, customers, orders
    # ------------------------------------------------------------------
    suppliers = [
        (
            i + 1,
            f"Supplier#{i + 1:04d}",
            rng.randrange(25),
            round(rng.uniform(-500.0, 10000.0), 2),
        )
        for i in range(config.suppliers)
    ]
    db.load("Supplier", suppliers)
    supplier_keys = [row[0] for row in suppliers]

    customers = [
        (
            i + 1,
            f"Customer#{i + 1:04d}",
            rng.randrange(25),
            rng.choice(SEGMENTS),
        )
        for i in range(config.customers)
    ]
    db.load("Customer", customers)

    # order amounts correlate with their line-item count (bigger orders
    # cost more), so averaging the denormalized Ordering relation — which
    # repeats an order once per line item — visibly inflates AVG(amount),
    # the Table 8 effect for T1
    item_counts = [
        rng.randint(*config.lineitems_per_order) for _ in range(config.orders)
    ]
    orders = [
        (
            i + 1,
            rng.randint(1, config.customers),
            round(item_counts[i] * rng.uniform(8000.0, 60000.0), 2),
            f"199{rng.randint(2, 8)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            rng.choice(PRIORITIES),
        )
        for i in range(config.orders)
    ]
    db.load("Order", orders)

    # ------------------------------------------------------------------
    # Line items
    # ------------------------------------------------------------------
    # each supplier supplies a stable set of parts; line items repeatedly
    # draw from that set so (part, supplier) pairs recur across orders.
    # Parts with a planted supplier shape (the chocolate part and the rose
    # pairs) are excluded from the organic pools so their supplier counts
    # stay exactly as planted.
    controlled = {chocolate, *pink_roses, *white_roses}
    organic_parts = [key for key in all_partkeys if key not in controlled]
    parts_of_supplier: Dict[int, List[int]] = {
        key: rng.sample(
            organic_parts, k=min(len(organic_parts), rng.randint(10, 20))
        )
        for key in supplier_keys
    }
    lineitems: Set[Tuple[int, int, int]] = set()
    rows: List[Tuple[int, int, int, int]] = []

    def add_lineitem(part: int, supplier: int, order: int) -> bool:
        key = (part, supplier, order)
        if key in lineitems:
            return False
        lineitems.add(key)
        rows.append((part, supplier, order, rng.randint(1, 50)))
        return True

    for orderkey in range(1, config.orders + 1):
        count = item_counts[orderkey - 1]
        for _ in range(count):
            supplier = rng.choice(supplier_keys)
            part = rng.choice(parts_of_supplier[supplier])
            add_lineitem(part, supplier, orderkey)

    # planted: the chocolate part, few suppliers x many orders
    chocolate_suppliers = rng.sample(supplier_keys, config.chocolate_suppliers)
    planted = 0
    order_cycle = rng.sample(range(1, config.orders + 1), config.orders)
    for orderkey in order_cycle:
        if planted >= config.chocolate_lineitems:
            break
        supplier = chocolate_suppliers[planted % len(chocolate_suppliers)]
        if add_lineitem(chocolate, supplier, orderkey):
            planted += 1

    # planted: make sure every royal-olive / yellow-tomato part has orders
    for special in royal_olive + yellow_tomato:
        for _ in range(rng.randint(3, 8)):
            add_lineitem(
                special,
                rng.choice(supplier_keys),
                rng.randint(1, config.orders),
            )

    # planted: rose part pairs share suppliers (3 pairs with overlap)
    rose_suppliers = rng.sample(supplier_keys, 3)
    shared = {
        pink_roses[0]: [rose_suppliers[0], rose_suppliers[1]],
        pink_roses[1]: [rose_suppliers[1]],
        white_roses[0]: [rose_suppliers[0], rose_suppliers[1]],
        white_roses[1]: [rose_suppliers[2]],
    }
    # the second pink rose also shares supplier 2 with the second white rose
    shared[pink_roses[1]].append(rose_suppliers[2])
    for part, part_suppliers in shared.items():
        for supplier in part_suppliers:
            for _ in range(2):
                add_lineitem(part, supplier, rng.randint(1, config.orders))

    # every order keeps at least one line item so the denormalized Ordering
    # relation preserves the full order set (Table 8 requires our answers to
    # be identical on TPCH and TPCH')
    orders_covered = {order for _, _, order in lineitems}
    for orderkey in range(1, config.orders + 1):
        while orderkey not in orders_covered:
            supplier = rng.choice(supplier_keys)
            if add_lineitem(
                rng.choice(parts_of_supplier[supplier]), supplier, orderkey
            ):
                orders_covered.add(orderkey)

    db.load("Lineitem", sorted(rows))
    db.check_foreign_keys()
    return db
