"""Datasets: the paper's university examples, synthetic TPC-H and ACMDL,
and the Table-7 denormalizers."""

from repro.datasets.acmdl import AcmdlConfig, acmdl_schema
from repro.datasets.acmdl import generate as generate_acmdl
from repro.datasets.denormalize import (
    UnnormalizedDataset,
    denormalize_acmdl,
    denormalize_tpch,
)
from repro.datasets.gen import generate_scaled, run_gen
from repro.datasets.tpch import TpchConfig, tpch_schema
from repro.datasets.tpch import generate as generate_tpch
from repro.datasets.university import (
    enrolment_database,
    enrolment_schema,
    university_database,
    university_schema,
    unnormalized_lecturer_database,
    unnormalized_lecturer_schema,
)

__all__ = [
    "AcmdlConfig",
    "TpchConfig",
    "UnnormalizedDataset",
    "acmdl_schema",
    "denormalize_acmdl",
    "denormalize_tpch",
    "enrolment_database",
    "enrolment_schema",
    "generate_acmdl",
    "generate_scaled",
    "generate_tpch",
    "run_gen",
    "tpch_schema",
    "university_database",
    "university_schema",
    "unnormalized_lecturer_database",
    "unnormalized_lecturer_schema",
]
