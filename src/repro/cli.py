"""Command-line interface: keyword search from the shell.

Examples::

    python -m repro --dataset university "Green SUM Credit"
    python -m repro --dataset tpch --top 3 "COUNT part GROUPBY supplier"
    python -m repro --dataset tpch-unnorm 'COUNT supplier "Indian black chocolate"'
    python -m repro --dataset acmdl --sqak "COUNT proceeding editor Smith"
    python -m repro --db-dir ./mydb --explain "COUNT thing GROUPBY other"
    python -m repro --dataset university --sql "SELECT Sname FROM Student"
    python -m repro --dataset tpch --strict "COUNT part GROUPBY supplier"
    python -m repro --dataset tpch --backend sqlite "COUNT part GROUPBY supplier"
    python -m repro check --dataset tpch-unnorm
    python -m repro diff --dataset acmdl-unnorm
    python -m repro diff --backend disk --dataset university
    python -m repro stats --dataset tpch --table Customer
    python -m repro --dataset tpch --optimizer off "SUM amount GROUPBY nname"
    python -m repro gen --dataset tpch --sf 4 --out ./tpch-sf4
    python -m repro serve --port 8080 --datasets university,tpch
    python -m repro --reproduce

``--dataset`` picks one of the built-in databases; ``--db-dir`` loads a
database saved with :func:`repro.relational.io.save_database` (optionally
with declared FDs in an ``fds.json``: ``{"Relation": ["A -> B", ...]}``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.baselines import SqakEngine
from repro.datasets import (
    denormalize_acmdl,
    denormalize_tpch,
    enrolment_database,
    generate_acmdl,
    generate_tpch,
    university_database,
)
from repro.engine import KeywordSearchEngine
from repro.errors import ReproError, UnsupportedQueryError
from repro.observability import NULL_TRACER, Tracer
from repro.relational.database import Database
from repro.relational.io import load_database

_ENROLMENT_FDS = {"Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]}

DATASETS = (
    "university",
    "enrolment",
    "tpch",
    "tpch-unnorm",
    "acmdl",
    "acmdl-unnorm",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Semantic keyword search with aggregates and GROUPBY "
            "(EDBT 2016 reproduction)"
        ),
    )
    parser.add_argument("query", nargs="?", help="keyword query (quote phrases)")
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        choices=DATASETS,
        default="university",
        help="built-in dataset to query (default: university)",
    )
    source.add_argument(
        "--db-dir",
        type=Path,
        help="directory with schema.json + CSVs (see repro.relational.io)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=1,
        metavar="K",
        help="number of interpretations to show (default: 1)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help=(
            "show interpretations, SQL and the traced pipeline span tree "
            "(per-stage timings and counters) without executing"
        ),
    )
    parser.add_argument(
        "--sqak",
        action="store_true",
        help="use the SQAK baseline instead of the semantic engine",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sqlite", "disk"),
        default="memory",
        help=(
            "execution backend for answers: the in-memory engine "
            "(default), a real SQLite database, or the paged on-disk "
            "storage engine materialized from the dataset (see "
            "docs/BACKENDS.md and docs/STORAGE.md)"
        ),
    )
    parser.add_argument(
        "--optimizer",
        choices=("cost", "off"),
        default="cost",
        help=(
            "plan-choice policy: cost (default, statistics-driven join "
            "reordering and access-path selection — see docs/PLANNER.md) "
            "or off (the size-only greedy heuristic, byte-for-byte the "
            "pre-planner behavior)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "statically analyze every interpretation and refuse to answer "
            "when any error-severity diagnostic is found"
        ),
    )
    parser.add_argument(
        "--sql",
        action="store_true",
        help="treat the argument as raw SQL and execute it directly",
    )
    parser.add_argument(
        "--schema",
        action="store_true",
        help="print the database summary and ORM schema graph, then exit",
    )
    parser.add_argument(
        "--reproduce",
        action="store_true",
        help="regenerate every table/figure of the paper and exit",
    )
    return parser


def _load_source(args: argparse.Namespace) -> Tuple[Database, dict, dict, tuple]:
    """Return (database, fds, name_hints, sqak_extra_joins)."""
    if args.db_dir is not None:
        database = load_database(args.db_dir)
        fds_path = Path(args.db_dir) / "fds.json"
        fds = {}
        if fds_path.exists():
            with open(fds_path, encoding="utf-8") as handle:
                fds = json.load(handle)
        return database, fds, {}, ()
    return load_dataset(args.dataset)


def load_dataset(name: str) -> Tuple[Database, dict, dict, tuple]:
    """Build one built-in dataset: (database, fds, name_hints, sqak_joins)."""
    if name == "university":
        return university_database(), {}, {}, ()
    if name == "enrolment":
        return enrolment_database(), _ENROLMENT_FDS, {}, ()
    if name == "tpch":
        return generate_tpch(), {}, {}, ()
    if name == "acmdl":
        return generate_acmdl(), {}, {}, ()
    if name == "tpch-unnorm":
        dataset = denormalize_tpch(generate_tpch())
    else:
        dataset = denormalize_acmdl(generate_acmdl())
    return (
        dataset.database,
        dict(dataset.fds),
        dict(dataset.name_hints),
        tuple(dataset.sqak_extra_joins),
    )


def _run_semantic(
    engine: KeywordSearchEngine,
    query: str,
    top: int,
    explain: bool,
    out,
    strict: bool = False,
    backend: Optional[str] = None,
) -> int:
    result = engine.search(
        query, k=top, trace=explain, strict=strict, backend=backend
    )
    if explain and not strict:
        # strict search already ran the analyzers (and attached per-
        # interpretation diagnostics); otherwise run them for the report
        engine._analyze_compiled(query, result.interpretations)
    for interpretation in result.interpretations:
        print(f"-- interpretation #{interpretation.rank}: "
              f"{interpretation.description}", file=out)
        if explain:
            print(interpretation.pattern.render_tree(), file=out)
        print(interpretation.sql, file=out)
        if explain:
            # compile (but do not execute) the physical plan, inside the
            # search trace so plan counters show up in the span tree
            tracer = interpretation._tracer or NULL_TRACER
            with tracer.span("plan"):
                plan = engine.executor.plan_for(interpretation.select, tracer)
            print("-- physical plan", file=out)
            print(plan.explain(), file=out)
            print("-- diagnostics", file=out)
            if interpretation.diagnostics:
                for diagnostic in interpretation.diagnostics:
                    print(str(diagnostic), file=out)
            else:
                print("no diagnostics", file=out)
        else:
            print(interpretation.execute().format_table(), file=out)
        print(file=out)
    if explain and result.trace is not None:
        print("-- trace", file=out)
        print(result.trace.render(), file=out)
    return 0


def _run_sqak(sqak: SqakEngine, query: str, explain: bool, out) -> int:
    tracer = Tracer() if explain else NULL_TRACER
    try:
        with tracer.span("search", query=query):
            statement = sqak.compile(query, tracer=tracer)
    except UnsupportedQueryError as exc:
        print(f"SQAK: N.A. ({exc})", file=out)
        return 1
    print(statement.sql, file=out)
    if explain:
        with tracer.span("plan"):
            plan = sqak.executor.plan_for(statement.select, tracer)
        print("-- physical plan", file=out)
        print(plan.explain(), file=out)
    else:
        print(sqak.executor.execute(statement.select).format_table(), file=out)
    if explain and tracer.trace is not None:
        print(file=out)
        print("-- trace", file=out)
        print(tracer.trace.render(), file=out)
    return 0


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "collect planner statistics — sampled NDV, null fractions, "
            "equi-height histograms, MCV lists — for a dataset's tables "
            "(the profiles the cost-based optimizer plans with; see "
            "docs/PLANNER.md)"
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        choices=DATASETS,
        default="university",
        help="built-in dataset to profile (default: university)",
    )
    source.add_argument(
        "--db-dir",
        type=Path,
        help="directory with schema.json + CSVs (see repro.relational.io)",
    )
    parser.add_argument(
        "--table",
        action="append",
        dest="tables",
        metavar="NAME",
        help="table to profile (repeatable; default: every table)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        metavar="N",
        help="reservoir sample size (default: 512)",
    )
    parser.add_argument(
        "--buckets",
        type=int,
        metavar="N",
        help="equi-height histogram buckets (default: 16)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="sampling seed (default: 2016; profiles are deterministic)",
    )
    return parser


def run_stats(argv: Optional[List[str]] = None, out=None) -> int:
    """``python -m repro stats`` — print table profiles for a dataset."""
    out = out or sys.stdout
    args = build_stats_parser().parse_args(argv)
    from repro.planner import StatisticsCatalog, StatsConfig

    try:
        database, _fds, _hints, _joins = _load_source(args)
        overrides = {
            key: value
            for key, value in (
                ("sample_size", args.sample),
                ("histogram_buckets", args.buckets),
                ("seed", args.seed),
            )
            if value is not None
        }
        catalog = StatisticsCatalog(database, StatsConfig(**overrides))
        tracer = Tracer()
        names = args.tables or [relation.name for relation in database.schema]
        for name in names:
            print(catalog.profile(name, tracer).format(), file=out)
            print(file=out)
        print(
            f"profiled {len(names)} tables "
            f"(data version {database.data_version})",
            file=out,
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        from repro.analysis.check import run_check

        return run_check(list(argv[1:]), out)
    if argv and argv[0] == "diff":
        from repro.backends.differential import run_diff

        return run_diff(list(argv[1:]), out)
    if argv and argv[0] == "serve":
        from repro.service.cli import run_serve

        return run_serve(list(argv[1:]), out)
    if argv and argv[0] == "gen":
        from repro.datasets.gen import run_gen

        return run_gen(list(argv[1:]), out)
    if argv and argv[0] == "stats":
        return run_stats(list(argv[1:]), out)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.reproduce:
        from repro.experiments.report import full_report

        full_report(out)
        return 0

    try:
        database, fds, name_hints, extra_joins = _load_source(args)
        if args.schema:
            print(database.summary(), file=out)
            engine = KeywordSearchEngine(
                database,
                fds=fds or None,
                name_hints=name_hints or None,
                optimizer=args.optimizer,
            )
            print(file=out)
            print(engine.graph.describe(), file=out)
            return 0
        if not args.query:
            parser.error("a query is required (or use --schema/--reproduce)")
        if args.sql:
            if args.backend != "memory":
                from repro.backends import create_backend

                options = (
                    {"optimizer": args.optimizer} if args.backend == "disk" else {}
                )
                backend = create_backend(args.backend, database, **options)
                try:
                    print(backend.execute(args.query).format_table(), file=out)
                finally:
                    backend.close()
                return 0
            from repro.relational.executor import execute_sql

            print(
                execute_sql(
                    database, args.query, optimizer=args.optimizer
                ).format_table(),
                file=out,
            )
            return 0
        if args.sqak:
            if args.backend != "memory":
                parser.error("--sqak only executes on the memory backend")
            sqak = SqakEngine(database, extra_joins=extra_joins)
            return _run_sqak(sqak, args.query, args.explain, out)
        engine = KeywordSearchEngine(
            database,
            fds=fds or None,
            name_hints=name_hints or None,
            optimizer=args.optimizer,
        )
        return _run_semantic(
            engine,
            args.query,
            args.top,
            args.explain,
            out,
            strict=args.strict,
            backend=args.backend,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
