"""repro — semantic keyword search with aggregates and GROUPBY.

A faithful reproduction of Zeng, Lee & Ling, *Answering Keyword Queries
involving Aggregates and GROUPBY on Relational Databases* (EDBT 2016),
including the in-memory relational substrate, the ORM schema graph, query
patterns, SQL generation for normalized and unnormalized databases, and the
SQAK baseline it is evaluated against.

Public entry points:

* :class:`~repro.relational.Database` — the in-memory relational engine;
* :class:`~repro.engine.KeywordSearchEngine` — the paper's system;
* :class:`~repro.baselines.sqak.SqakEngine` — the SQAK baseline;
* :mod:`repro.datasets` — university / TPC-H / ACMDL datasets;
* :mod:`repro.experiments` — the paper's evaluation harness;
* :mod:`repro.observability` — pipeline tracing, metrics, EXPLAIN trees.
"""

from repro.engine import Interpretation, KeywordSearchEngine, SearchResult
from repro.observability import MetricsRegistry, Trace, Tracer
from repro.relational import Database, DatabaseSchema, DataType, ForeignKey, QueryResult

__version__ = "1.0.0"

__all__ = [
    "Database",
    "DatabaseSchema",
    "DataType",
    "ForeignKey",
    "Interpretation",
    "KeywordSearchEngine",
    "MetricsRegistry",
    "QueryResult",
    "SearchResult",
    "Trace",
    "Tracer",
    "__version__",
]
