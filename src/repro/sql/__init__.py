"""SQL language layer: AST, renderer, lexer and parser."""

from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    agg,
    column,
    count_star,
    eq,
)
from repro.sql.parser import parse
from repro.sql.render import render, render_pretty
from repro.sql.validate import ValidationIssue, is_valid, validate_select

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "BinaryOp",
    "ColumnRef",
    "Contains",
    "DerivedTable",
    "Expr",
    "FromItem",
    "FuncCall",
    "IsNull",
    "Literal",
    "OrderItem",
    "Select",
    "SelectItem",
    "Star",
    "TableRef",
    "ValidationIssue",
    "agg",
    "column",
    "count_star",
    "eq",
    "is_valid",
    "parse",
    "render",
    "render_pretty",
    "validate_select",
]
