"""Recursive-descent parser for the rendered SQL dialect.

Grammar (informal)::

    select    := SELECT [DISTINCT] item (',' item)*
                 FROM from_item (',' from_item)*
                 [WHERE expr] [GROUP BY expr (',' expr)*]
                 [ORDER BY expr [DESC] (',' ...)*] [LIMIT n]
    item      := expr [AS ident | ident]
    from_item := ident [ident] | '(' select ')' ident
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := cmp_expr (AND cmp_expr)*
    cmp_expr  := add_expr [(=|<>|<|<=|>|>=) add_expr | LIKE string | IS [NOT] NULL]
    add_expr  := mul_expr (('+'|'-') mul_expr)*
    mul_expr  := primary (('*'|'/') primary)*
    primary   := number | string | NULL | TRUE | FALSE | func '(' ... ')'
               | ident ['.' ident] | '(' expr ')'

``LIKE '%x%'`` parses into :class:`~repro.sql.ast.Contains`, the AST node the
translators emit for the paper's ``contains`` predicate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SqlSyntaxError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenStream, tokenize


def parse(sql: str) -> Select:
    """Parse SQL text into a :class:`Select`, raising on trailing input."""
    stream = TokenStream(tokenize(sql))
    select = _parse_select(stream)
    if not stream.at_end():
        token = stream.current
        raise SqlSyntaxError(
            f"unexpected input {token.text!r} at position {token.position}"
        )
    return select


def _parse_select(stream: TokenStream) -> Select:
    stream.expect_keyword("SELECT")
    distinct = stream.accept_keyword("DISTINCT")
    items = [_parse_select_item(stream)]
    while stream.accept_punct(","):
        items.append(_parse_select_item(stream))
    stream.expect_keyword("FROM")
    from_items = [_parse_from_item(stream)]
    while stream.accept_punct(","):
        from_items.append(_parse_from_item(stream))
    where: Optional[Expr] = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expr(stream)
    group_by: List[Expr] = []
    order_by: List[OrderItem] = []
    limit: Optional[int] = None
    if stream.accept_keyword("GROUP"):
        stream.expect_keyword("BY")
        group_by.append(_parse_expr(stream))
        while stream.accept_punct(","):
            group_by.append(_parse_expr(stream))
    if stream.accept_keyword("ORDER"):
        stream.expect_keyword("BY")
        order_by.append(_parse_order_item(stream))
        while stream.accept_punct(","):
            order_by.append(_parse_order_item(stream))
    if stream.accept_keyword("LIMIT"):
        token = stream.advance()
        if token.kind != "number":
            raise SqlSyntaxError(f"expected number after LIMIT at {token.position}")
        limit = int(token.text)
    return Select(
        items=tuple(items),
        from_items=tuple(from_items),
        where=where,
        group_by=tuple(group_by),
        order_by=tuple(order_by),
        limit=limit,
        distinct=distinct,
    )


def _parse_order_item(stream: TokenStream) -> OrderItem:
    expr = _parse_expr(stream)
    descending = False
    if stream.accept_keyword("DESC"):
        descending = True
    else:
        stream.accept_keyword("ASC")
    return OrderItem(expr, descending)


def _parse_select_item(stream: TokenStream) -> SelectItem:
    expr = _parse_expr(stream)
    alias: Optional[str] = None
    if stream.accept_keyword("AS"):
        alias = stream.expect_ident().text
    elif stream.current.kind == "ident":
        alias = stream.advance().text
    return SelectItem(expr, alias)


def _parse_from_item(stream: TokenStream) -> FromItem:
    if stream.accept_punct("("):
        select = _parse_select(stream)
        stream.expect_punct(")")
        alias = stream.expect_ident().text
        return DerivedTable(select, alias)
    table = stream.expect_ident().text
    alias = table
    if stream.current.kind == "ident":
        alias = stream.advance().text
    return TableRef(table, alias)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def _parse_expr(stream: TokenStream) -> Expr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Expr:
    left = _parse_and(stream)
    while stream.accept_keyword("OR"):
        right = _parse_and(stream)
        left = BinaryOp("OR", left, right)
    return left


def _parse_and(stream: TokenStream) -> Expr:
    left = _parse_comparison(stream)
    while stream.accept_keyword("AND"):
        right = _parse_comparison(stream)
        left = BinaryOp("AND", left, right)
    return left


def _parse_comparison(stream: TokenStream) -> Expr:
    left = _parse_additive(stream)
    token = stream.current
    if token.kind == "op" and token.text in ("=", "<>", "<", "<=", ">", ">="):
        stream.advance()
        right = _parse_additive(stream)
        return BinaryOp(token.text, left, right)
    if token.is_keyword("LIKE"):
        stream.advance()
        pattern_token = stream.advance()
        if pattern_token.kind != "string":
            raise SqlSyntaxError(
                f"expected string after LIKE at {pattern_token.position}"
            )
        pattern = pattern_token.text
        if pattern.startswith("%") and pattern.endswith("%") and len(pattern) >= 2:
            return Contains(left, pattern[1:-1])
        raise SqlSyntaxError(
            "only '%...%' (contains) LIKE patterns are supported"
        )
    if token.is_keyword("IS"):
        stream.advance()
        negated = stream.accept_keyword("NOT")
        stream.expect_keyword("NULL")
        return IsNull(left, negated)
    return left


def _parse_additive(stream: TokenStream) -> Expr:
    left = _parse_multiplicative(stream)
    while stream.current.kind == "op" and stream.current.text in ("+", "-"):
        op = stream.advance().text
        right = _parse_multiplicative(stream)
        left = BinaryOp(op, left, right)
    return left


def _parse_multiplicative(stream: TokenStream) -> Expr:
    left = _parse_primary(stream)
    while stream.current.kind == "op" and stream.current.text in ("*", "/"):
        op = stream.advance().text
        right = _parse_primary(stream)
        left = BinaryOp(op, left, right)
    return left


def _parse_primary(stream: TokenStream) -> Expr:
    token = stream.current
    if token.kind == "number":
        stream.advance()
        if "." in token.text:
            return Literal(float(token.text))
        return Literal(int(token.text))
    if token.kind == "string":
        stream.advance()
        return Literal(token.text)
    if token.is_keyword("NULL"):
        stream.advance()
        return Literal(None)
    if token.is_keyword("TRUE"):
        stream.advance()
        return Literal(True)
    if token.is_keyword("FALSE"):
        stream.advance()
        return Literal(False)
    if token.kind == "punct" and token.text == "(":
        stream.advance()
        inner = _parse_expr(stream)
        stream.expect_punct(")")
        return inner
    if token.kind == "op" and token.text == "*":
        stream.advance()
        return Star()
    if token.kind == "ident":
        return _parse_identifier_expr(stream)
    raise SqlSyntaxError(
        f"unexpected token {token.text!r} at position {token.position}"
    )


def _parse_identifier_expr(stream: TokenStream) -> Expr:
    first = stream.expect_ident().text
    if stream.current.kind == "punct" and stream.current.text == "(":
        stream.advance()
        distinct = stream.accept_keyword("DISTINCT")
        args: List[Expr] = []
        if stream.current.kind == "op" and stream.current.text == "*":
            stream.advance()
            args.append(Star())
        elif not (stream.current.kind == "punct" and stream.current.text == ")"):
            args.append(_parse_expr(stream))
            while stream.accept_punct(","):
                args.append(_parse_expr(stream))
        stream.expect_punct(")")
        name = first.upper() if first.upper() in AGGREGATE_FUNCTIONS else first
        return FuncCall(name, tuple(args), distinct=distinct)
    if stream.accept_punct("."):
        column_name = stream.expect_ident().text
        return ColumnRef(column_name, qualifier=first)
    return ColumnRef(first)
