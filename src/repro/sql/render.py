"""Render SQL AST nodes to SQL text, parameterized by a target dialect.

Two formatting modes are provided: compact (single line, used in logs and
tests) and pretty (clause-per-line with indented subqueries, used when
showing the generated SQL to users, mirroring the formatting in the paper).

Rendering is additionally parameterized by a :class:`SqlDialect`, which
captures the textual differences between SQL implementations the execution
backends (``repro.backends``) target:

* **identifier quoting** — the paper-style default only quotes identifiers
  that collide with keywords of our own lexer (``Order``); a real RDBMS has
  a much larger keyword list (``Date``, ``From``...), so its dialect quotes
  every identifier;
* **boolean literals** — ``TRUE``/``FALSE`` versus the integers ``1``/``0``
  (SQLite stores booleans as integers);
* **LIKE wildcard escaping** — the paper's ``contains`` predicate means a
  literal substring match; a phrase containing ``%`` or ``_`` must be
  escaped (with an ``ESCAPE`` clause) on backends that execute the rendered
  ``LIKE`` for real;
* **integer-division casting** — our in-memory engine evaluates ``/`` as
  true division (``7 / 2 = 3.5``); SQLite divides integers with truncation
  (``7 / 2 = 3``), so its dialect casts the left operand to ``REAL``.

The default :data:`ANSI_DIALECT` reproduces the historical output of this
module byte for byte, so everything keyed on rendered SQL (the plan cache,
log lines, test expectations) is unaffected by the dialect layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SqlRenderError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 3,
    "<>": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
}

# Control characters legal inside a SQL string literal: these round-trip
# through real parsers (sqlite3 included) unchanged.  Everything else below
# 0x20, and DEL, is rejected — there is no portable escape syntax for them
# in standard SQL string literals.
_ALLOWED_CONTROL = {"\n", "\t", "\r"}


@dataclass(frozen=True)
class SqlDialect:
    """Textual conventions of one SQL implementation.

    ``quote_all_identifiers``
        Quote every identifier instead of only our own lexer's keywords.
    ``boolean_literals``
        ``(true_text, false_text)`` for rendering boolean constants.
    ``escape_like_wildcards``
        Escape ``%``/``_``/``\\`` in ``contains`` phrases and attach an
        ``ESCAPE '\\'`` clause, preserving literal-substring semantics.
    ``cast_integer_division``
        Wrap the left operand of ``/`` in ``CAST(... AS REAL)`` so integer
        division is true division, as the in-memory engine evaluates it.
    """

    name: str
    quote_all_identifiers: bool = False
    boolean_literals: Tuple[str, str] = ("TRUE", "FALSE")
    escape_like_wildcards: bool = False
    cast_integer_division: bool = False


ANSI_DIALECT = SqlDialect("ansi")
SQLITE_DIALECT = SqlDialect(
    "sqlite",
    quote_all_identifiers=True,
    boolean_literals=("1", "0"),
    escape_like_wildcards=True,
    cast_integer_division=True,
)

DIALECTS = {
    "ansi": ANSI_DIALECT,
    "sqlite": SQLITE_DIALECT,
}


def dialect_for(name: str) -> SqlDialect:
    """Look up a registered dialect by name."""
    try:
        return DIALECTS[name]
    except KeyError:
        raise SqlRenderError(
            f"unknown SQL dialect {name!r} (known: {', '.join(sorted(DIALECTS))})"
        ) from None


def check_renderable_text(value: str) -> None:
    """Reject text no SQL dialect can express as a string literal.

    Embedded single quotes are fine (they are doubled); ``\\n``, ``\\t``
    and ``\\r`` are legal inside standard string literals; every other
    control character (NUL, ESC, ...) has no portable escape syntax and is
    rejected so it cannot silently corrupt a statement shipped to a real
    backend.
    """
    for ch in value:
        if (ord(ch) < 0x20 and ch not in _ALLOWED_CONTROL) or ord(ch) == 0x7F:
            raise SqlRenderError(
                f"string {value!r} contains control character {ch!r} "
                "which cannot be expressed in a SQL string literal"
            )


def escape_string(value: str) -> str:
    """Single-quote a string literal, doubling embedded quotes.

    Control characters other than newline, tab and carriage return are
    rejected (:func:`check_renderable_text`): they have no portable
    representation inside a SQL string literal.
    """
    check_renderable_text(value)
    return "'" + value.replace("'", "''") + "'"


def quote_identifier(name: str, dialect: SqlDialect = ANSI_DIALECT) -> str:
    """Double-quote identifiers that collide with SQL keywords (``Order``).

    Dialects with ``quote_all_identifiers`` quote unconditionally: a real
    RDBMS has a far larger reserved-word list than our lexer (``Date``,
    ``From``, ...), and quoting everything is always safe.
    """
    from repro.sql.lexer import KEYWORDS

    if dialect.quote_all_identifiers or name.upper() in KEYWORDS:
        escaped = name.replace('"', '""')
        return f'"{escaped}"'
    return name


def _escape_like_pattern(phrase: str) -> str:
    """Escape LIKE wildcards so *phrase* matches as a literal substring."""
    return (
        phrase.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
    )


def render_expr(
    expr: Expr, parent_precedence: int = 0, dialect: SqlDialect = ANSI_DIALECT
) -> str:
    """Render a scalar expression with minimal parenthesisation."""
    if isinstance(expr, ColumnRef):
        name = quote_identifier(expr.name, dialect)
        if expr.qualifier:
            return f"{quote_identifier(expr.qualifier, dialect)}.{name}"
        return name
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, bool):
            true_text, false_text = dialect.boolean_literals
            return true_text if expr.value else false_text
        if isinstance(expr.value, str):
            return escape_string(expr.value)
        return repr(expr.value)
    if isinstance(expr, FuncCall):
        inner = ", ".join(render_expr(arg, dialect=dialect) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({distinct}{inner})"
    if isinstance(expr, Contains):
        check_renderable_text(expr.phrase)
        column_text = render_expr(expr.column, dialect=dialect)
        if dialect.escape_like_wildcards:
            pattern = "%" + _escape_like_pattern(expr.phrase) + "%"
            pattern = pattern.replace("'", "''")
            return f"{column_text} LIKE '{pattern}' ESCAPE '\\'"
        pattern = "%" + expr.phrase.replace("'", "''") + "%"
        return f"{column_text} LIKE '{pattern}'"
    if isinstance(expr, IsNull):
        negation = " NOT" if expr.negated else ""
        operand = render_expr(expr.operand, 3, dialect)
        return f"{operand} IS{negation} NULL"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE.get(expr.op.upper(), 3)
        left = render_expr(expr.left, precedence, dialect)
        right = render_expr(expr.right, precedence + 1, dialect)
        if expr.op == "/" and dialect.cast_integer_division:
            # force true division on backends where int / int truncates
            left = f"CAST({left} AS REAL)"
        text = f"{left} {expr.op.upper()} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot render expression {expr!r}")


def _render_select_item(item: SelectItem, dialect: SqlDialect) -> str:
    text = render_expr(item.expr, dialect=dialect)
    if item.alias:
        text += f" AS {quote_identifier(item.alias, dialect)}"
    return text


def _render_from_item(
    item: FromItem, pretty: bool, indent: int, dialect: SqlDialect
) -> str:
    if isinstance(item, TableRef):
        table = quote_identifier(item.table, dialect)
        if item.alias != item.table:
            return f"{table} {quote_identifier(item.alias, dialect)}"
        return table
    if isinstance(item, DerivedTable):
        inner = _render_select(item.select, pretty, indent + 1, dialect)
        alias = quote_identifier(item.alias, dialect)
        if pretty:
            pad = "  " * (indent + 1)
            return f"(\n{pad}{inner}\n{'  ' * indent}) {alias}"
        return f"({inner}) {alias}"
    raise TypeError(f"cannot render FROM item {item!r}")


def _render_select(
    select: Select,
    pretty: bool,
    indent: int = 0,
    dialect: SqlDialect = ANSI_DIALECT,
) -> str:
    clauses: List[str] = []
    distinct = "DISTINCT " if select.distinct else ""
    items = ", ".join(_render_select_item(item, dialect) for item in select.items)
    clauses.append(f"SELECT {distinct}{items}")
    from_text = ", ".join(
        _render_from_item(item, pretty, indent, dialect)
        for item in select.from_items
    )
    clauses.append(f"FROM {from_text}")
    if select.where is not None:
        clauses.append(f"WHERE {render_expr(select.where, dialect=dialect)}")
    if select.group_by:
        group = ", ".join(
            render_expr(expr, dialect=dialect) for expr in select.group_by
        )
        clauses.append(f"GROUP BY {group}")
    if select.order_by:
        order = ", ".join(
            render_expr(item.expr, dialect=dialect)
            + (" DESC" if item.descending else "")
            for item in select.order_by
        )
        clauses.append(f"ORDER BY {order}")
    if select.limit is not None:
        clauses.append(f"LIMIT {select.limit}")
    if pretty:
        pad = "\n" + "  " * indent
        return pad.join(clauses)
    return " ".join(clauses)


def render(select: Select, dialect: SqlDialect = ANSI_DIALECT) -> str:
    """Single-line SQL text."""
    return _render_select(select, pretty=False, dialect=dialect)


def render_pretty(select: Select, dialect: SqlDialect = ANSI_DIALECT) -> str:
    """Multi-line SQL text with indented subqueries."""
    return _render_select(select, pretty=True, dialect=dialect)
