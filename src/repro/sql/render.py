"""Render SQL AST nodes to SQL text.

Two modes are provided: compact (single line, used in logs and tests) and
pretty (clause-per-line with indented subqueries, used when showing the
generated SQL to users, mirroring the formatting in the paper).
"""

from __future__ import annotations

from typing import List

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 3,
    "<>": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
}


def escape_string(value: str) -> str:
    """Single-quote a string literal, doubling embedded quotes."""
    return "'" + value.replace("'", "''") + "'"


def quote_identifier(name: str) -> str:
    """Double-quote identifiers that collide with SQL keywords (``Order``)."""
    from repro.sql.lexer import KEYWORDS

    if name.upper() in KEYWORDS:
        return f'"{name}"'
    return name


def render_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render a scalar expression with minimal parenthesisation."""
    if isinstance(expr, ColumnRef):
        name = quote_identifier(expr.name)
        if expr.qualifier:
            return f"{quote_identifier(expr.qualifier)}.{name}"
        return name
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        if isinstance(expr.value, str):
            return escape_string(expr.value)
        return repr(expr.value)
    if isinstance(expr, FuncCall):
        inner = ", ".join(render_expr(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({distinct}{inner})"
    if isinstance(expr, Contains):
        pattern = "%" + expr.phrase.replace("'", "''") + "%"
        return f"{render_expr(expr.column)} LIKE '{pattern}'"
    if isinstance(expr, IsNull):
        negation = " NOT" if expr.negated else ""
        return f"{render_expr(expr.operand, 3)} IS{negation} NULL"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE.get(expr.op.upper(), 3)
        left = render_expr(expr.left, precedence)
        right = render_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op.upper()} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot render expression {expr!r}")


def _render_select_item(item: SelectItem) -> str:
    text = render_expr(item.expr)
    if item.alias:
        text += f" AS {quote_identifier(item.alias)}"
    return text


def _render_from_item(item: FromItem, pretty: bool, indent: int) -> str:
    if isinstance(item, TableRef):
        table = quote_identifier(item.table)
        if item.alias != item.table:
            return f"{table} {quote_identifier(item.alias)}"
        return table
    if isinstance(item, DerivedTable):
        inner = _render_select(item.select, pretty, indent + 1)
        alias = quote_identifier(item.alias)
        if pretty:
            pad = "  " * (indent + 1)
            return f"(\n{pad}{inner}\n{'  ' * indent}) {alias}"
        return f"({inner}) {alias}"
    raise TypeError(f"cannot render FROM item {item!r}")


def _render_select(select: Select, pretty: bool, indent: int = 0) -> str:
    clauses: List[str] = []
    distinct = "DISTINCT " if select.distinct else ""
    items = ", ".join(_render_select_item(item) for item in select.items)
    clauses.append(f"SELECT {distinct}{items}")
    from_text = ", ".join(
        _render_from_item(item, pretty, indent) for item in select.from_items
    )
    clauses.append(f"FROM {from_text}")
    if select.where is not None:
        clauses.append(f"WHERE {render_expr(select.where)}")
    if select.group_by:
        group = ", ".join(render_expr(expr) for expr in select.group_by)
        clauses.append(f"GROUP BY {group}")
    if select.order_by:
        order = ", ".join(
            render_expr(item.expr) + (" DESC" if item.descending else "")
            for item in select.order_by
        )
        clauses.append(f"ORDER BY {order}")
    if select.limit is not None:
        clauses.append(f"LIMIT {select.limit}")
    if pretty:
        pad = "\n" + "  " * indent
        return pad.join(clauses)
    return " ".join(clauses)


def render(select: Select) -> str:
    """Single-line SQL text."""
    return _render_select(select, pretty=False)


def render_pretty(select: Select) -> str:
    """Multi-line SQL text with indented subqueries."""
    return _render_select(select, pretty=True)
