"""Static semantic validation of SELECT statements against a schema.

The executor reports unknown/ambiguous references at runtime, mid-plan;
this validator checks a whole statement up front and with better messages:

* every FROM table exists; aliases are unique;
* every column reference resolves against exactly one visible FROM item
  (derived tables expose their output names);
* aggregate arguments are columns/star; aggregates are not nested inside
  each other within one expression;
* in an aggregated SELECT, every non-aggregate output column appears in
  GROUP BY (the classic SQL rule — the in-memory executor is lenient and
  evaluates stray columns on the group's first row, so the validator is the
  strict gate);
* LIMIT is non-negative.

Each issue carries a stable diagnostic code (``S001``–``S014``, see
``repro.analysis.diagnostics.CODE_CATALOG``); the analysis layer converts
issues into :class:`~repro.analysis.diagnostics.Diagnostic` values and adds
schema-aware type checks on top.

Used by the test suite as an invariant over all generated SQL, wired into
the executor's debug mode, and exposed for users who hand-write statements.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.relational.schema import DatabaseSchema
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FuncCall,
    IsNull,
    Select,
    Star,
    TableRef,
)


class ValidationIssue:
    """One problem found in a statement."""

    def __init__(self, message: str, path: str = "", code: str = "S000") -> None:
        self.message = message
        self.path = path  # e.g. 'subquery R1' for nested scopes
        self.code = code  # stable diagnostic code (see CODE_CATALOG)

    def __str__(self) -> str:
        if self.path:
            return f"{self.path}: {self.message}"
        return self.message

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValidationIssue({str(self)!r})"


def validate_select(
    select: Select, schema: DatabaseSchema, path: str = ""
) -> List[ValidationIssue]:
    """All issues in *select* (empty list = valid)."""
    issues: List[ValidationIssue] = []
    scope: Dict[str, Set[str]] = {}  # alias -> exposed (lower-case) columns

    def report(message: str, code: str) -> None:
        issues.append(ValidationIssue(message, path, code))

    # ------------------------------------------------------------------
    # FROM
    # ------------------------------------------------------------------
    if not select.from_items:
        report("FROM clause is empty", "S009")
    for item in select.from_items:
        if item.alias in scope:
            report(f"duplicate alias {item.alias!r}", "S004")
            continue
        if isinstance(item, TableRef):
            if item.table not in schema:
                report(f"unknown table {item.table!r}", "S001")
                scope[item.alias] = set()
                continue
            scope[item.alias] = {
                name.lower()
                for name in schema.relation(item.table).column_names
            }
        elif isinstance(item, DerivedTable):
            sub_path = f"{path + '/' if path else ''}subquery {item.alias}"
            issues.extend(validate_select(item.select, schema, sub_path))
            scope[item.alias] = {
                sub.output_name(default=f"col{i + 1}").lower()
                for i, sub in enumerate(item.select.items)
            }

    # ------------------------------------------------------------------
    # column resolution
    # ------------------------------------------------------------------
    def check_ref(ref: ColumnRef, code: str = "S002") -> None:
        name = ref.name.lower()
        if ref.qualifier is not None:
            exposed = scope.get(ref.qualifier)
            if exposed is None:
                report(f"unknown alias in {ref}", code)
            elif name not in exposed:
                report(f"unknown column {ref}", code)
            return
        owners = [alias for alias, cols in scope.items() if name in cols]
        if not owners:
            report(f"unknown column {ref}", code)
        elif len(owners) > 1:
            report(
                f"ambiguous column {ref} (in {', '.join(sorted(owners))})",
                "S003",
            )

    def check_expr(
        expr: Expr, inside_aggregate: bool = False, ref_code: str = "S002"
    ) -> None:
        if isinstance(expr, ColumnRef):
            check_ref(expr, ref_code)
        elif isinstance(expr, Star):
            if not inside_aggregate:
                report("'*' is only valid inside COUNT(*)", "S005")
        elif isinstance(expr, FuncCall):
            if expr.is_aggregate and inside_aggregate:
                report(
                    f"nested aggregate {expr.name} inside an aggregate "
                    "(use a derived table)",
                    "S006",
                )
            for arg in expr.args:
                check_expr(arg, inside_aggregate or expr.is_aggregate, ref_code)
        elif isinstance(expr, BinaryOp):
            check_expr(expr.left, inside_aggregate, ref_code)
            check_expr(expr.right, inside_aggregate, ref_code)
        elif isinstance(expr, Contains):
            check_expr(expr.column, inside_aggregate, ref_code)
        elif isinstance(expr, IsNull):
            check_expr(expr.operand, inside_aggregate, ref_code)
        # Literal: nothing to check

    for item in select.items:
        check_expr(item.expr)
    if select.where is not None:
        check_expr(select.where)
        if select.where.contains_aggregate():
            report("aggregate in WHERE clause", "S007")
    for expr in select.group_by:
        check_expr(expr)
        if expr.contains_aggregate():
            report("aggregate in GROUP BY clause", "S007")
    for order in select.order_by:
        # ORDER BY may also name output columns; accept those
        if isinstance(order.expr, ColumnRef) and order.expr.qualifier is None:
            output_names = {
                item.output_name(default=f"col{i + 1}").lower()
                for i, item in enumerate(select.items)
            }
            if order.expr.name.lower() in output_names:
                continue
        check_expr(order.expr, ref_code="S014")

    # ------------------------------------------------------------------
    # grouping discipline
    # ------------------------------------------------------------------
    if select.has_aggregates() or select.group_by:
        grouped = {repr(expr) for expr in select.group_by}
        for item in select.items:
            if item.expr.contains_aggregate():
                continue
            if repr(item.expr) not in grouped:
                report(
                    f"non-aggregate output {item.expr} not in GROUP BY",
                    "S008",
                )

    if select.limit is not None and select.limit < 0:
        report("negative LIMIT", "S009")
    return issues


def is_valid(select: Select, schema: DatabaseSchema) -> bool:
    """Convenience wrapper: True when no issues are found."""
    return not validate_select(select, schema)
