"""Tokenizer for the SQL dialect rendered by :mod:`repro.sql.render`.

A parser for generated SQL may look redundant, but it earns its keep twice:
round-trip property tests (render -> parse -> render) pin down the dialect,
and the executor's public entry point accepts SQL text so examples can show
real SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "AND",
    "OR",
    "AS",
    "LIKE",
    "IS",
    "NOT",
    "NULL",
    "TRUE",
    "FALSE",
    "LIMIT",
    "DESC",
    "ASC",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword', 'ident', 'number', 'string', 'op', 'punct', 'eof'
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),."


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens; raises :class:`SqlSyntaxError` on junk."""
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("ident", sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= length:
                    raise SqlSyntaxError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < length and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # a dot not followed by a digit is a qualifier separator
                    if j + 1 >= length or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched_op = None
        for op in _OPERATORS:
            if sql.startswith(op, i):
                matched_op = op
                break
        if matched_op:
            text = "<>" if matched_op == "!=" else matched_op
            tokens.append(Token("op", text, i))
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", length))
    return tokens


class TokenStream:
    """Cursor over a token list with one-token lookahead."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SqlSyntaxError(
                f"expected {word} at position {self.current.position}, "
                f"found {self.current.text!r}"
            )
        return self.advance()

    def accept_punct(self, ch: str) -> bool:
        if self.current.kind == "punct" and self.current.text == ch:
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> Token:
        if not (self.current.kind == "punct" and self.current.text == ch):
            raise SqlSyntaxError(
                f"expected {ch!r} at position {self.current.position}, "
                f"found {self.current.text!r}"
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise SqlSyntaxError(
                f"expected identifier at position {self.current.position}, "
                f"found {self.current.text!r}"
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind == "eof"
