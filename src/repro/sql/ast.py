"""SQL abstract syntax tree.

The dialect is the subset the paper's systems emit: ``SELECT [DISTINCT]``
lists with aggregate functions, ``FROM`` lists mixing base tables and derived
tables (subqueries), conjunctive ``WHERE`` clauses with equality joins and
``contains`` predicates, ``GROUP BY``, ``ORDER BY`` and ``LIMIT``.

Joins are expressed paper-style: a flat ``FROM`` list plus equality
predicates in ``WHERE`` (no explicit ``JOIN`` keyword), which is exactly the
SQL shown in the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for scalar expressions."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def contains_aggregate(self) -> bool:
        return any(
            isinstance(node, FuncCall) and node.is_aggregate for node in self.walk()
        )


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly qualified column reference, e.g. ``S1.Sid`` or ``Sname``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string or NULL (None)."""

    value: Any

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


@dataclass(frozen=True)
class Star(Expr):
    """``*`` inside ``COUNT(*)``."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "*"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; aggregates may carry DISTINCT."""

    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_FUNCTIONS

    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operation: comparisons, AND/OR, arithmetic."""

    op: str  # '=', '<>', '<', '<=', '>', '>=', 'AND', 'OR', '+', '-', '*', '/'
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Contains(Expr):
    """The paper's ``a contains t`` predicate (substring, case-insensitive).

    Rendered as ``a LIKE '%t%'`` in SQL text.
    """

    column: Expr
    phrase: str

    def children(self) -> Tuple[Expr, ...]:
        return (self.column,)


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


# ----------------------------------------------------------------------
# Select structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One output column: expression plus optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def output_name(self, default: str) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return default


class FromItem:
    """Base class for FROM-list entries."""

    alias: str


@dataclass(frozen=True)
class TableRef(FromItem):
    """A base table with an alias (defaults to the table name)."""

    table: str
    alias: str

    @classmethod
    def of(cls, table: str, alias: Optional[str] = None) -> "TableRef":
        return cls(table, alias or table)


@dataclass(frozen=True)
class DerivedTable(FromItem):
    """A subquery in the FROM clause with a mandatory alias."""

    select: "Select"
    alias: str


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A complete SELECT statement."""

    items: Tuple[SelectItem, ...]
    from_items: Tuple[FromItem, ...]
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    # -- construction convenience -------------------------------------
    @staticmethod
    def conjunction(predicates: Sequence[Expr]) -> Optional[Expr]:
        """AND-combine predicates; None for an empty sequence."""
        result: Optional[Expr] = None
        for predicate in predicates:
            result = predicate if result is None else BinaryOp("AND", result, predicate)
        return result

    def where_conjuncts(self) -> List[Expr]:
        """Flatten the WHERE clause into its top-level AND conjuncts."""
        conjuncts: List[Expr] = []

        def collect(expr: Optional[Expr]) -> None:
            if expr is None:
                return
            if isinstance(expr, BinaryOp) and expr.op == "AND":
                collect(expr.left)
                collect(expr.right)
            else:
                conjuncts.append(expr)

        collect(self.where)
        return conjuncts

    def has_aggregates(self) -> bool:
        return any(item.expr.contains_aggregate() for item in self.items)

    def subqueries(self) -> List["Select"]:
        """Directly nested derived-table subqueries."""
        return [item.select for item in self.from_items if isinstance(item, DerivedTable)]


def column(name: str, qualifier: Optional[str] = None) -> ColumnRef:
    """Shorthand constructor used throughout translators and tests."""
    return ColumnRef(name, qualifier)


def eq(left: Expr, right: Expr) -> BinaryOp:
    return BinaryOp("=", left, right)


def agg(func: str, operand: Expr, distinct: bool = False) -> FuncCall:
    """Build an aggregate call, validating the function name."""
    upper = func.upper()
    if upper not in AGGREGATE_FUNCTIONS:
        raise ValueError(f"{func!r} is not an aggregate function")
    return FuncCall(upper, (operand,), distinct=distinct)


def count_star() -> FuncCall:
    return FuncCall("COUNT", (Star(),))
