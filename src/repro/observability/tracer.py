"""Structured tracing and metrics for the query pipeline.

Zero-dependency instrumentation for every stage of the engine (term
matching, pattern generation, disambiguation, ranking, translation,
rewriting, execution).  Three pieces:

* :class:`Tracer` — builds a tree of :class:`Span` timings via
  ``with tracer.span("generate"):`` context managers and accumulates
  named counters (``tracer.count("patterns_generated", 3)``) on the
  innermost open span.  Timings use the monotonic clock
  (:func:`time.perf_counter`), never wall time.
* :class:`Trace` — the finished span tree attached to a
  :class:`~repro.engine.SearchResult`; renders as an ASCII tree
  (:meth:`Trace.render`), exports to/from JSON, and answers aggregate
  questions (:meth:`Trace.counter`, :meth:`Trace.stage_times`).
* :class:`MetricsRegistry` — a thread-safe in-memory sink every span
  duration and counter also flows into, for cross-query aggregation
  (cache hit rates, total rows scanned, per-stage time totals) with
  JSON export.

Instrumented code takes a ``tracer`` argument defaulting to
:data:`NULL_TRACER`, whose ``span()`` / ``count()`` are no-ops sharing a
single reusable context manager — the disabled-mode cost is one
attribute lookup and an empty method call per instrumentation point
(checked to stay under 2% of pipeline time by
``benchmarks/check_overhead.py``).

Span and counter names are catalogued in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed section of the pipeline: name, attributes, counters,
    child spans and a monotonic-clock duration (seconds)."""

    __slots__ = ("name", "attributes", "counters", "children", "duration", "_start")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = attributes or {}
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.duration: Optional[float] = None
        self._start = time.perf_counter()

    def finish(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._start

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        return (self.duration or 0.0) * 1000.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named *name* in this subtree (depth first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [span for span in self.walk() if span.name == name]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        span = cls(payload["name"], dict(payload.get("attributes", {})))
        span.duration = payload.get("duration_ms", 0.0) / 1000.0
        span.counters = {
            str(k): int(v) for k, v in payload.get("counters", {}).items()
        }
        span.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
            f"{len(self.children)} children)"
        )


class Trace:
    """A finished span tree for one pipeline run."""

    def __init__(self, root: Span) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def find(self, name: str) -> Optional[Span]:
        return self.root.find(name)

    def find_all(self, name: str) -> List[Span]:
        return self.root.find_all(name)

    def counter(self, name: str) -> int:
        """Value of a counter summed over the whole tree."""
        return sum(span.counters.get(name, 0) for span in self.root.walk())

    def counters(self) -> Dict[str, int]:
        """All counters summed over the whole tree."""
        totals: Dict[str, int] = {}
        for span in self.root.walk():
            for name, value in span.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def stage_times(self) -> Dict[str, float]:
        """Seconds per pipeline stage: direct children of the root, with
        same-named spans (several ``execute`` calls) summed."""
        times: Dict[str, float] = {}
        for child in self.root.children:
            times[child.name] = times.get(child.name, 0.0) + (child.duration or 0.0)
        return times

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return self.root.to_dict()

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Trace":
        return cls(Span.from_dict(payload))

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII tree with per-span timings and counters, the body of
        ``repro --explain``."""
        lines: List[str] = []
        self._render_span(self.root, "", "", lines, is_root=True)
        return "\n".join(lines)

    @staticmethod
    def _format_span(span: Span) -> str:
        text = f"{span.name}  {span.duration_ms:.3f} ms"
        extras = [f"{k}={v!r}" for k, v in span.attributes.items()]
        extras.extend(f"{k}={v}" for k, v in span.counters.items())
        if extras:
            text += "  [" + " ".join(extras) + "]"
        return text

    def _render_span(
        self,
        span: Span,
        prefix: str,
        child_prefix: str,
        lines: List[str],
        is_root: bool = False,
    ) -> None:
        lines.append(prefix + self._format_span(span))
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            connector = "`-- " if last else "|-- "
            extension = "    " if last else "|   "
            self._render_span(
                child,
                child_prefix + connector,
                child_prefix + extension,
                lines,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.root.name!r}, {self.duration_ms:.3f} ms)"


class MetricsRegistry:
    """Thread-safe in-memory counters and timing aggregates.

    Every span finish feeds ``span.<name>`` timings; every
    ``Tracer.count`` feeds the counter of the same name.  The registry
    outlives individual traces, so it answers cross-query questions
    ("how many rows were scanned this session", "average generate time").
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timings: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def increment(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self._timings.get(name)
            if entry is None:
                self._timings[name] = {
                    "count": 1,
                    "total_s": seconds,
                    "min_s": seconds,
                    "max_s": seconds,
                }
            else:
                entry["count"] += 1
                entry["total_s"] += seconds
                entry["min_s"] = min(entry["min_s"], seconds)
                entry["max_s"] = max(entry["max_s"], seconds)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timing(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            entry = self._timings.get(name)
            return dict(entry) if entry is not None else None

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timings": {name: dict(entry) for name, entry in self._timings.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timings.clear()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        registry = cls()
        payload = json.loads(text)
        registry._counters = {
            str(k): int(v) for k, v in payload.get("counters", {}).items()
        }
        registry._timings = {
            str(k): dict(v) for k, v in payload.get("timings", {}).items()
        }
        return registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"MetricsRegistry({len(snap['counters'])} counters, "
            f"{len(snap['timings'])} timings)"
        )


class _SpanHandle:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Builds one span tree; shared by every stage of one pipeline run.

    A tracer is single-threaded by design (one per ``search()`` call);
    the :class:`MetricsRegistry` it reports into is the thread-safe,
    shareable part.  A span opened while no span is on the stack after
    the root finished (lazy ``Interpretation.execute``) attaches under
    the root, so execution shows up in the same tree.
    """

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._root: Optional[Span] = None
        self._stack: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        span = Span(name, attributes or None)
        if self._stack:
            self._stack[-1].children.append(span)
        elif self._root is None:
            self._root = span
        else:
            # late span after the root closed: attach under the root
            self._root.children.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.finish()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.registry.observe(f"span.{span.name}", span.duration or 0.0)

    def count(self, name: str, value: int = 1) -> None:
        if self._stack:
            self._stack[-1].count(name, value)
        elif self._root is not None:
            self._root.count(name, value)
        self.registry.increment(name, value)

    @property
    def trace(self) -> Optional[Trace]:
        """The trace built so far (None until the first span opens)."""
        if self._root is None:
            return None
        return Trace(self._root)


class _NullHandle:
    """Reusable no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    The default for all instrumented code paths; its cost per
    instrumentation point is one method call returning a shared
    singleton, which keeps disabled-mode overhead below the 2% budget
    (``benchmarks/check_overhead.py``).
    """

    enabled = False
    trace = None

    def span(self, name: str, **attributes: Any) -> _NullHandle:
        return _NULL_HANDLE

    def count(self, name: str, value: int = 1) -> None:
        return None


NULL_TRACER = NullTracer()
