"""Pipeline observability: structured tracing, metrics, EXPLAIN trees.

See ``docs/OBSERVABILITY.md`` for the span/counter catalogue and the
user-facing API (``engine.search(..., trace=True)``,
``repro --explain``).
"""

from repro.observability.report import (
    STAGE_ORDER,
    aggregate_counters,
    aggregate_stages,
    collect_traces,
    format_stage_table,
    stage_breakdown,
)
from repro.observability.tracer import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "STAGE_ORDER",
    "Span",
    "Trace",
    "Tracer",
    "aggregate_counters",
    "aggregate_stages",
    "collect_traces",
    "format_stage_table",
    "stage_breakdown",
]
