"""Per-stage breakdown tables built from traces.

Shared by the benchmark harness (``benchmarks/conftest.py``), the full
reproduction report (``repro --reproduce``) and the examples: run a set
of queries with tracing enabled, aggregate the stage timings and
counters, and format one compact table so every headline number can be
decomposed into its pipeline stages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observability.tracer import Trace

#: Pipeline-stage display order (spans directly under the ``search`` root).
STAGE_ORDER: Tuple[str, ...] = (
    "parse",
    "match",
    "generate",
    "disambiguate",
    "rank",
    "translate",
    "execute",
)


def collect_traces(engine, queries: Iterable[str]) -> List[Trace]:
    """Run each query with tracing enabled and return the traces.

    *engine* is a :class:`~repro.engine.KeywordSearchEngine`; queries
    that fail (no match, no pattern) are skipped — the breakdown should
    never break the harness it decorates.
    """
    from repro.errors import ReproError

    traces: List[Trace] = []
    for text in queries:
        try:
            result = engine.search(text, trace=True)
        except ReproError:
            continue
        if result.trace is not None:
            traces.append(result.trace)
    return traces


def aggregate_stages(traces: Sequence[Trace]) -> Dict[str, Dict[str, float]]:
    """Total seconds and call counts per stage over many traces."""
    stages: Dict[str, Dict[str, float]] = {}
    for trace in traces:
        for name, seconds in trace.stage_times().items():
            entry = stages.setdefault(name, {"total_s": 0.0, "calls": 0})
            entry["total_s"] += seconds
            entry["calls"] += 1
    return stages


def aggregate_counters(traces: Sequence[Trace]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for trace in traces:
        for name, value in trace.counters().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def format_stage_table(
    title: str,
    traces: Sequence[Trace],
    counters: Optional[Sequence[str]] = None,
) -> str:
    """One breakdown table: stage, total ms, share of traced time.

    *counters* selects counter totals to append below the table (all of
    them when None).
    """
    stages = aggregate_stages(traces)
    traced_total = sum(entry["total_s"] for entry in stages.values())
    ordered = [name for name in STAGE_ORDER if name in stages]
    ordered += sorted(name for name in stages if name not in STAGE_ORDER)

    lines = [title]
    lines.append(f"{'stage':<14}{'total (ms)':>12}{'share':>8}{'calls':>8}")
    for name in ordered:
        entry = stages[name]
        share = entry["total_s"] / traced_total if traced_total else 0.0
        lines.append(
            f"{name:<14}{entry['total_s'] * 1000.0:>12.3f}"
            f"{share:>7.1%}{int(entry['calls']):>8}"
        )
    lines.append(
        f"{'(sum)':<14}{traced_total * 1000.0:>12.3f}{'':>8}{len(traces):>8}"
    )

    counter_totals = aggregate_counters(traces)
    if counters is not None:
        counter_totals = {
            name: counter_totals[name]
            for name in counters
            if name in counter_totals
        }
    if counter_totals:
        pairs = [f"{name}={value}" for name, value in sorted(counter_totals.items())]
        lines.append("counters: " + " ".join(pairs))
    return "\n".join(lines)


def stage_breakdown(engine, queries: Iterable[str], title: str) -> str:
    """Convenience: trace *queries* on *engine* and format the table."""
    return format_stage_table(title, collect_traces(engine, queries))
