"""Candidate-key discovery from functional dependencies."""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Sequence, Set

from repro.fd.closure import closure
from repro.fd.functional_dependency import AttributeSet, FunctionalDependency


def is_superkey(
    attributes: AttributeSet,
    all_attributes: AttributeSet,
    fds: Sequence[FunctionalDependency],
) -> bool:
    """True when *attributes* functionally determine every attribute."""
    return closure(attributes, fds) >= all_attributes


def candidate_keys(
    all_attributes: AttributeSet,
    fds: Sequence[FunctionalDependency],
    limit: int = 64,
) -> List[AttributeSet]:
    """All candidate keys (minimal superkeys) of a relation.

    Uses the classical necessary/possible partition: attributes never on any
    FD right-hand side must be in every key; attributes on neither side must
    be too.  The remaining attributes are searched by increasing subset size.
    *limit* caps the number of keys returned (schema-scale relations have
    few).
    """
    fds = [fd for fd in fds if fd.attributes() <= all_attributes]
    rhs_attrs: Set[str] = set()
    lhs_attrs: Set[str] = set()
    for fd in fds:
        rhs_attrs |= fd.rhs
        lhs_attrs |= fd.lhs
    # attributes that can never be derived -> must be in every key
    core = frozenset(all_attributes - rhs_attrs)
    optional = sorted(all_attributes - core)

    keys: List[AttributeSet] = []
    if is_superkey(core, all_attributes, fds):
        return [core]
    for size in range(1, len(optional) + 1):
        for combo in combinations(optional, size):
            candidate = core | frozenset(combo)
            if any(existing <= candidate for existing in keys):
                continue  # not minimal
            if is_superkey(candidate, all_attributes, fds):
                keys.append(candidate)
                if len(keys) >= limit:
                    return keys
        if keys and all(
            any(existing <= core | frozenset(combo) for existing in keys)
            for combo in combinations(optional, size)
        ):
            # every candidate of the next sizes would be a superset
            break
    return keys


def prime_attributes(
    all_attributes: AttributeSet, fds: Sequence[FunctionalDependency]
) -> AttributeSet:
    """Attributes appearing in at least one candidate key."""
    result: Set[str] = set()
    for key in candidate_keys(all_attributes, fds):
        result |= key
    return frozenset(result)
