"""Attribute closure, implication and minimal cover.

These are the classical algorithms (Armstrong closure, membership test,
canonical cover) that power the key finder and the 3NF synthesis of
Algorithm 1.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.fd.functional_dependency import AttributeSet, FunctionalDependency


def closure(
    attributes: Iterable[str], fds: Sequence[FunctionalDependency]
) -> AttributeSet:
    """Attribute closure X+ of *attributes* under *fds*.

    Standard fixpoint iteration; O(|fds|^2) worst case, fine at schema scale.
    """
    result: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= result and not fd.rhs <= result:
                result |= fd.rhs
                changed = True
    return frozenset(result)


def implies(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """True when *fds* logically imply *candidate* (membership test)."""
    return candidate.rhs <= closure(candidate.lhs, fds)


def equivalent(
    first: Sequence[FunctionalDependency], second: Sequence[FunctionalDependency]
) -> bool:
    """True when two FD sets imply each other."""
    return all(implies(second, fd) for fd in first) and all(
        implies(first, fd) for fd in second
    )


def minimal_cover(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """Canonical (minimal) cover of *fds*.

    1. Split every FD into singleton right-hand sides.
    2. Remove extraneous left-hand-side attributes.
    3. Remove redundant FDs.

    The result is deterministic for a given input order (attributes are
    processed sorted), which keeps the 3NF synthesis and hence the normalized
    view stable across runs.
    """
    # step 1: singleton rhs, drop trivial
    work: List[FunctionalDependency] = []
    for fd in fds:
        for part in fd.decompose():
            if not part.is_trivial and part not in work:
                work.append(part)

    # step 2: remove extraneous lhs attributes
    reduced: List[FunctionalDependency] = []
    for index, fd in enumerate(work):
        lhs = set(fd.lhs)
        for attr in sorted(fd.lhs):
            if len(lhs) == 1:
                break
            trial = lhs - {attr}
            # attr is extraneous if trial -> rhs already follows
            if fd.rhs <= closure(trial, work):
                lhs = trial
        reduced.append(FunctionalDependency(lhs, fd.rhs))
    work = reduced

    # step 3: remove redundant FDs
    result: List[FunctionalDependency] = list(work)
    for fd in list(work):
        remaining = [other for other in result if other is not fd]
        if remaining and implies(remaining, fd):
            result = remaining
    # dedupe while preserving order
    seen: Set[FunctionalDependency] = set()
    unique: List[FunctionalDependency] = []
    for fd in result:
        if fd not in seen:
            seen.add(fd)
            unique.append(fd)
    return unique
