"""Functional-dependency discovery from data.

The paper assumes the FDs of an unnormalized database are known ("This can
be done by examining the functional dependencies that hold on the
relations").  In practice they must come from somewhere, so we provide a
small profiler that discovers minimal FDs ``X -> A`` with |X| bounded, in
the spirit of TANE's lattice search but implemented with straightforward
partition refinement — plenty for schema-scale relations.

Discovered FDs are *data-supported hypotheses*: they hold on the instance,
not necessarily on the domain.  The engine therefore prefers declared FDs
and only falls back to discovery when none are given.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.fd.closure import implies
from repro.fd.functional_dependency import FunctionalDependency
from repro.relational.table import Table


def _partition(table: Table, columns: Tuple[str, ...]) -> Dict[Tuple, List[int]]:
    """Group row positions by their value tuple over *columns*."""
    indices = [table.schema.column_index(col) for col in columns]
    groups: Dict[Tuple, List[int]] = {}
    for position, row in enumerate(table.rows):
        key = tuple(row[i] for i in indices)
        groups.setdefault(key, []).append(position)
    return groups


def holds(table: Table, fd: FunctionalDependency) -> bool:
    """Check whether *fd* holds on the table instance."""
    lhs = tuple(sorted(fd.lhs))
    rhs = tuple(sorted(fd.rhs))
    lhs_idx = [table.schema.column_index(col) for col in lhs]
    rhs_idx = [table.schema.column_index(col) for col in rhs]
    seen: Dict[Tuple, Tuple] = {}
    for row in table.rows:
        key = tuple(row[i] for i in lhs_idx)
        value = tuple(row[i] for i in rhs_idx)
        if key in seen:
            if seen[key] != value:
                return False
        else:
            seen[key] = value
    return True


def discover_fds(table: Table, max_lhs: int = 2) -> List[FunctionalDependency]:
    """Discover minimal FDs with determinant size up to *max_lhs*.

    Returns FDs ``X -> A`` (singleton dependents) such that no proper subset
    of X already determines A, pruning dependents already implied by
    smaller discoveries.
    """
    columns = table.schema.column_names
    discovered: List[FunctionalDependency] = []
    for size in range(1, max_lhs + 1):
        for lhs in combinations(columns, size):
            lhs_set = frozenset(lhs)
            for target in columns:
                if target in lhs_set:
                    continue
                candidate = FunctionalDependency(lhs_set, {target})
                if implies(discovered, candidate):
                    continue  # already follows from smaller FDs
                if holds(table, candidate):
                    discovered.append(candidate)
    return discovered


def discover_key_fds(table: Table) -> List[FunctionalDependency]:
    """The FDs implied by the declared primary key (key -> all attributes)."""
    key = frozenset(table.schema.primary_key)
    rest = frozenset(table.schema.column_names) - key
    if not rest:
        return []
    return [FunctionalDependency(key, rest)]
