"""Functional dependencies: closure, keys, normal forms, 3NF synthesis."""

from repro.fd.closure import closure, equivalent, implies, minimal_cover
from repro.fd.discovery import discover_fds, discover_key_fds, holds
from repro.fd.functional_dependency import (
    FunctionalDependency,
    attrs,
    parse_fds,
    project_fds,
    project_fds_exact,
)
from repro.fd.keys import candidate_keys, is_superkey, prime_attributes
from repro.fd.normal_forms import (
    NormalFormViolation,
    is_2nf,
    is_3nf,
    is_bcnf,
    violations_2nf,
    violations_3nf,
)
from repro.fd.synthesis import (
    DecomposedRelation,
    is_lossless_pair,
    merge_same_key,
    synthesize_3nf,
)

__all__ = [
    "DecomposedRelation",
    "FunctionalDependency",
    "NormalFormViolation",
    "attrs",
    "candidate_keys",
    "closure",
    "discover_fds",
    "discover_key_fds",
    "equivalent",
    "holds",
    "implies",
    "is_2nf",
    "is_3nf",
    "is_bcnf",
    "is_lossless_pair",
    "is_superkey",
    "merge_same_key",
    "minimal_cover",
    "parse_fds",
    "prime_attributes",
    "project_fds",
    "project_fds_exact",
    "synthesize_3nf",
    "violations_2nf",
    "violations_3nf",
]
