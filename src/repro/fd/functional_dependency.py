"""Functional dependencies.

A functional dependency ``X -> Y`` over a relation states that any two
tuples agreeing on the attributes X also agree on Y.  The paper uses FDs in
Section 4 to detect unnormalized relations and synthesize the normalized 3NF
view; this module provides the value type, the rest of ``repro.fd`` builds
closure/key/normal-form machinery on top of it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import NormalizationError

AttributeSet = FrozenSet[str]


def attrs(*names: str) -> AttributeSet:
    """Convenience constructor for attribute sets."""
    return frozenset(names)


class FunctionalDependency:
    """An FD ``lhs -> rhs`` with non-empty determinant."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[str], rhs: Iterable[str]) -> None:
        self.lhs: AttributeSet = frozenset(lhs)
        self.rhs: AttributeSet = frozenset(rhs)
        if not self.lhs:
            raise NormalizationError("FD determinant must be non-empty")
        if not self.rhs:
            raise NormalizationError("FD dependent must be non-empty")

    @classmethod
    def parse(cls, text: str) -> "FunctionalDependency":
        """Parse ``"A, B -> C, D"`` notation."""
        if "->" not in text:
            raise NormalizationError(f"FD text {text!r} must contain '->'")
        left, right = text.split("->", 1)
        lhs = [part.strip() for part in left.split(",") if part.strip()]
        rhs = [part.strip() for part in right.split(",") if part.strip()]
        return cls(lhs, rhs)

    @property
    def is_trivial(self) -> bool:
        """True when rhs is contained in lhs (implied by reflexivity)."""
        return self.rhs <= self.lhs

    def attributes(self) -> AttributeSet:
        return self.lhs | self.rhs

    def decompose(self) -> List["FunctionalDependency"]:
        """Split into singleton-rhs FDs (used by minimal-cover computation)."""
        return [FunctionalDependency(self.lhs, {attr}) for attr in sorted(self.rhs)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        left = ", ".join(sorted(self.lhs))
        right = ", ".join(sorted(self.rhs))
        return f"{left} -> {right}"


def parse_fds(texts: Sequence[str]) -> List[FunctionalDependency]:
    """Parse several FDs in ``"A -> B"`` notation."""
    return [FunctionalDependency.parse(text) for text in texts]


def project_fds(
    fds: Sequence[FunctionalDependency], attributes: AttributeSet
) -> List[FunctionalDependency]:
    """FDs whose attributes all fall within *attributes*.

    This is the syntactic projection (sufficient for the synthesis pipeline,
    which always projects onto attribute sets produced from the FDs
    themselves); :func:`project_fds_exact` computes the fully general
    projection via closure enumeration.
    """
    return [fd for fd in fds if fd.attributes() <= attributes]


def project_fds_exact(
    fds: Sequence[FunctionalDependency], attributes: AttributeSet
) -> List[FunctionalDependency]:
    """The exact projection of *fds* onto *attributes*.

    Enumerates every subset X of *attributes* and emits
    ``X -> (X+ ∩ attributes) - X`` — the textbook algorithm, exponential in
    |attributes| and therefore only for small attribute sets (it exists to
    catch transitive dependencies the syntactic projection misses, e.g.
    projecting {A->B, B->C} onto {A, C} yields A->C).  The result is
    reduced to a minimal cover.
    """
    from itertools import combinations

    from repro.fd.closure import closure, minimal_cover

    universe = sorted(attributes)
    projected: List[FunctionalDependency] = []
    for size in range(1, len(universe)):
        for combo in combinations(universe, size):
            lhs = frozenset(combo)
            implied = (closure(lhs, fds) & attributes) - lhs
            if implied:
                projected.append(FunctionalDependency(lhs, implied))
    return minimal_cover(projected)
