"""Second and third normal form tests.

The paper (Section 4) detects unnormalized relations by checking whether
each relation is in 3NF under its declared functional dependencies — the
Enrolment relation of Figure 8 fails 2NF because ``Sname`` and ``Age``
depend on ``Sid`` alone, a proper subset of the key ``{Sid, Code}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.fd.closure import closure
from repro.fd.functional_dependency import AttributeSet, FunctionalDependency
from repro.fd.keys import candidate_keys, is_superkey, prime_attributes


@dataclass(frozen=True)
class NormalFormViolation:
    """One FD that breaks a normal form, with a human-readable reason."""

    fd: FunctionalDependency
    normal_form: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.normal_form} violation by {self.fd}: {self.reason}"


def violations_2nf(
    attributes: AttributeSet, fds: Sequence[FunctionalDependency]
) -> List[NormalFormViolation]:
    """FDs violating 2NF: a non-prime attribute depending on a proper
    subset of some candidate key (partial dependency)."""
    keys = candidate_keys(attributes, fds)
    prime = prime_attributes(attributes, fds)
    result: List[NormalFormViolation] = []
    for fd in fds:
        if fd.attributes() - attributes:
            continue
        non_prime_rhs = fd.rhs - prime - fd.lhs
        if not non_prime_rhs:
            continue
        for key in keys:
            if fd.lhs < key:  # proper subset of a key
                result.append(
                    NormalFormViolation(
                        fd,
                        "2NF",
                        f"non-prime {sorted(non_prime_rhs)} depends on proper "
                        f"key subset {sorted(fd.lhs)} of key {sorted(key)}",
                    )
                )
                break
    return result


def violations_3nf(
    attributes: AttributeSet, fds: Sequence[FunctionalDependency]
) -> List[NormalFormViolation]:
    """FDs violating 3NF: for each non-trivial ``X -> A`` either X is a
    superkey or A is prime; otherwise it is a violation (this also covers
    every 2NF violation)."""
    prime = prime_attributes(attributes, fds)
    result: List[NormalFormViolation] = []
    for fd in fds:
        if fd.attributes() - attributes:
            continue
        if fd.is_trivial:
            continue
        if is_superkey(fd.lhs, attributes, fds):
            continue
        offending = fd.rhs - fd.lhs - prime
        if offending:
            result.append(
                NormalFormViolation(
                    fd,
                    "3NF",
                    f"determinant {sorted(fd.lhs)} is not a superkey and "
                    f"{sorted(offending)} is not prime",
                )
            )
    return result


def is_2nf(attributes: AttributeSet, fds: Sequence[FunctionalDependency]) -> bool:
    return not violations_2nf(attributes, fds)


def is_3nf(attributes: AttributeSet, fds: Sequence[FunctionalDependency]) -> bool:
    return not violations_3nf(attributes, fds)


def is_bcnf(attributes: AttributeSet, fds: Sequence[FunctionalDependency]) -> bool:
    """BCNF test (stricter than the paper needs; provided for completeness)."""
    for fd in fds:
        if fd.attributes() - attributes:
            continue
        if fd.is_trivial:
            continue
        if not is_superkey(fd.lhs, attributes, fds):
            return False
    return True
