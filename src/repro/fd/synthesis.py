"""Bernstein 3NF synthesis.

Decomposes a relation (attribute set + FDs) into a lossless,
dependency-preserving set of 3NF sub-relations — the ``Normalize R into a
set of 3NF relations`` step of the paper's Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.fd.closure import closure, implies, minimal_cover
from repro.fd.functional_dependency import AttributeSet, FunctionalDependency
from repro.fd.keys import candidate_keys


@dataclass(frozen=True)
class DecomposedRelation:
    """One synthesized 3NF sub-relation: its attributes and its key."""

    attributes: AttributeSet
    key: AttributeSet

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"R({', '.join(sorted(self.attributes))}) key={sorted(self.key)}"


def synthesize_3nf(
    attributes: AttributeSet, fds: Sequence[FunctionalDependency]
) -> List[DecomposedRelation]:
    """3NF synthesis of (attributes, fds).

    Classical Bernstein synthesis (Bernstein 1976):

    1. compute a minimal cover;
    2. group FDs whose determinants are equivalent (same closure) into one
       sub-relation `lhs U rhs...` keyed by the determinant; equivalent
       determinants X ~ Y contribute the bijection ``X -> Y, Y -> X`` to the
       J set;
    3. eliminate transitive dependencies: drop every cover FD implied by
       the remaining cover together with J (without this step a merged
       group can absorb an attribute that depends on a *proper subset* of
       the group key, violating 3NF — see the regression cover
       ``{AC->D, ABC->E, DE->C, ABE->D}``);
    4. ensure some sub-relation contains a candidate key of the whole
       relation, else add one;
    5. drop sub-relations subsumed by others;
    6. attributes not mentioned by any FD are appended to the key relation
       (they depend on the full key only).
    """
    cover = minimal_cover(fds)
    mentioned = frozenset().union(*(fd.attributes() for fd in cover)) if cover else frozenset()
    free_attributes = attributes - mentioned

    # group by determinant-equivalence (X ~ Y iff X+ == Y+)
    groups: Dict[FrozenSet[str], List[FunctionalDependency]] = {}
    closures: Dict[FrozenSet[str], AttributeSet] = {}
    determinants: Dict[FrozenSet[str], List[FrozenSet[str]]] = {}
    for fd in cover:
        fd_closure = closure(fd.lhs, cover)
        placed = False
        for representative in list(groups):
            if closures[representative] == fd_closure:
                groups[representative].append(fd)
                if fd.lhs not in determinants[representative]:
                    determinants[representative].append(fd.lhs)
                placed = True
                break
        if not placed:
            groups[fd.lhs] = [fd]
            closures[fd.lhs] = fd_closure
            determinants[fd.lhs] = [fd.lhs]

    # J set: the equivalence bijections between merged determinants
    j_set: List[FunctionalDependency] = []
    for representative, dets in determinants.items():
        for determinant in dets:
            if determinant != representative:
                j_set.append(FunctionalDependency(representative, determinant))
                j_set.append(FunctionalDependency(determinant, representative))

    # transitive elimination: find a minimal H' <= cover with
    # (H' u J)+ == (cover u J)+, greedily dropping FDs implied by the rest
    if j_set:
        reduced = list(cover)
        for fd in list(cover):
            rest = [other for other in reduced if other is not fd]
            if implies(rest + j_set, fd):
                reduced = rest
        for representative in groups:
            groups[representative] = [
                fd for fd in groups[representative] if fd in reduced
            ]

    relations: List[DecomposedRelation] = []
    for representative, group in groups.items():
        rel_attrs = frozenset(representative)
        # every equivalent determinant is a key of the sub-relation and must
        # appear in it, even when all of its own FDs were eliminated
        for determinant in determinants[representative]:
            rel_attrs |= determinant
        for fd in group:
            rel_attrs |= fd.lhs | fd.rhs
        relations.append(DecomposedRelation(rel_attrs, frozenset(representative)))

    # step 3: a candidate key of the original relation must appear somewhere
    keys = candidate_keys(attributes, cover)
    global_key = keys[0] if keys else attributes
    key_holder = None
    for relation in relations:
        for key in keys:
            if key <= relation.attributes:
                key_holder = relation
                global_key = key
                break
        if key_holder:
            break
    if key_holder is None:
        key_holder = DecomposedRelation(global_key, global_key)
        relations.append(key_holder)

    # step 5: attach FD-free attributes to the key relation
    if free_attributes:
        upgraded = DecomposedRelation(
            key_holder.attributes | free_attributes, key_holder.key
        )
        relations = [upgraded if rel is key_holder else rel for rel in relations]

    # step 4: remove subsumed sub-relations
    relations.sort(key=lambda rel: (-len(rel.attributes), sorted(rel.attributes)))
    kept: List[DecomposedRelation] = []
    for relation in relations:
        if any(relation.attributes <= other.attributes for other in kept):
            continue
        kept.append(relation)

    # deterministic output order: by sorted attribute names
    kept.sort(key=lambda rel: sorted(rel.attributes))
    return kept


def merge_same_key(
    relations: Sequence[DecomposedRelation],
) -> List[DecomposedRelation]:
    """Merge sub-relations sharing the same key (Algorithm 1, lines 9-11)."""
    merged: Dict[AttributeSet, AttributeSet] = {}
    order: List[AttributeSet] = []
    for relation in relations:
        if relation.key in merged:
            merged[relation.key] = merged[relation.key] | relation.attributes
        else:
            merged[relation.key] = relation.attributes
            order.append(relation.key)
    return [DecomposedRelation(merged[key], key) for key in order]


def is_lossless_pair(
    attributes: AttributeSet,
    fds: Sequence[FunctionalDependency],
    left: AttributeSet,
    right: AttributeSet,
) -> bool:
    """Binary lossless-join test: the shared attributes must determine one
    side (used by property tests over the synthesis output)."""
    common = left & right
    closed = closure(common, fds)
    return left <= closed or right <= closed
