"""The disk execution backend: paged storage behind the Backend protocol.

:class:`DiskBackend` materializes the bound
:class:`~repro.relational.database.Database` into a directory of
slotted-page heap files and secondary indexes
(:func:`repro.storage.materialize.materialize`), then serves SELECTs by
running the **same** compiled-plan executor
(:class:`~repro.relational.executor.Executor`) over a
:class:`~repro.storage.engine.DiskDatabase` — every page access going
through a fixed-capacity LRU buffer pool.  Fidelity therefore comes from
reusing the engine's physical plans; what differs is purely the storage
tier underneath them, which is exactly what the differential harness
(``python -m repro diff --backend disk``) pins down.

Materialization is lazy and keyed to :attr:`Database.data_version`, like
the SQLite backend: the first ``execute`` after a data change detects
the stale (or half-written — manifests are written last, atomically)
directory and rebuilds it.  With no ``path`` given, the backend
materializes into a private temporary directory removed on
:meth:`close`.

Buffer-pool counters (hits, misses, evictions, write-backs, pins) are
emitted as tracer counter deltas after every statement, flowing into the
engine's :class:`~repro.observability.MetricsRegistry`; the pool's page
budget is asserted after every statement — residency beyond capacity is
a :class:`~repro.errors.StorageError`, not a soft miss.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from typing import Any, Dict, Optional, Tuple, Union

from repro.backends.base import Backend, register_backend
from repro.errors import StorageError
from repro.observability import NULL_TRACER
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.result import QueryResult
from repro.sql.ast import Select
from repro.sql.render import ANSI_DIALECT
from repro.storage.engine import DEFAULT_POOL_CAPACITY, StorageEngine
from repro.storage.materialize import materialization_is_fresh, materialize
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.spimi import DEFAULT_BLOCK_BUDGET

__all__ = ["DiskBackend"]

#: pool statistics emitted as tracer counter deltas per statement
_MONOTONIC_COUNTERS = ("hits", "misses", "evictions", "writebacks", "pins")


class DiskBackend(Backend):
    """Executes compiled plans over paged on-disk storage."""

    name = "disk"
    dialect = ANSI_DIALECT
    capabilities = frozenset(
        {"python-values", "compiled-plans", "trace-operators", "persistent",
         "paged-storage"}
    )

    def __init__(
        self,
        path: Optional[str] = None,
        pool_capacity: int = DEFAULT_POOL_CAPACITY,
        page_size: int = DEFAULT_PAGE_SIZE,
        block_budget: int = DEFAULT_BLOCK_BUDGET,
        optimizer: str = "cost",
    ) -> None:
        super().__init__()
        self.path = path
        self.pool_capacity = pool_capacity
        self.page_size = page_size
        self.block_budget = block_budget
        # plan-choice policy for the executor over paged storage; "cost"
        # uses disk-calibrated coefficients (index probes pay page reads)
        self.optimizer = optimizer
        self._tempdir: Optional[str] = None
        self._engine: Optional[StorageEngine] = None
        self._executor: Optional[Executor] = None
        self._loaded_version: Optional[Tuple[int, int]] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Loading / materialization
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        """The materialization directory (created lazily when unset)."""
        with self._lock:
            if self.path is None:
                self._tempdir = tempfile.mkdtemp(prefix="repro-disk-")
                self.path = self._tempdir
            return self.path

    def load(self, database: Database, tracer: Any = NULL_TRACER) -> None:
        with self._lock:
            self.database = database
            self._materialize(tracer)

    def _materialize(self, tracer: Any = NULL_TRACER) -> None:
        database = self._require_database()
        directory = self.directory
        if self._engine is not None:
            self._engine.close()
            self._engine = None
            self._executor = None
        with tracer.span("materialize", backend=self.name, path=directory):
            if materialization_is_fresh(directory, database, self.page_size):
                tracer.count("materializations_reused")
            else:
                manifest = materialize(
                    database,
                    directory,
                    page_size=self.page_size,
                    block_budget=self.block_budget,
                )
                tracer.count("materializations")
                tracer.count("materialized_rows", manifest["totals"]["rows"])
                tracer.count("materialized_pages", manifest["totals"]["pages"])
            self._engine = StorageEngine(
                directory, database.schema, pool_capacity=self.pool_capacity
            )
        self._executor = Executor(
            self._engine.database,  # type: ignore[arg-type]  # duck-typed
            backend_label=self.name,
            optimizer=self.optimizer,
        )
        self._loaded_version = database.data_version

    def _ensure_fresh(self, tracer: Any = NULL_TRACER) -> Executor:
        database = self._require_database()
        if self._executor is None or self._loaded_version != database.data_version:
            self._materialize(tracer)
        assert self._executor is not None
        return self._executor

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Union[Select, str], tracer: Any = NULL_TRACER) -> QueryResult:
        with self._lock:
            executor = self._ensure_fresh(tracer)
            assert self._engine is not None
            before = dict(self._engine.pool.stats)
            result = executor.execute(query, tracer=tracer)
            self._emit_pool_counters(before, tracer)
            self._assert_page_budget()
            tracer.count("backend_rows", len(result.rows))
        return result

    def _emit_pool_counters(self, before: Dict[str, int], tracer: Any) -> None:
        stats = self._engine.pool.stats  # type: ignore[union-attr]
        for key in _MONOTONIC_COUNTERS:
            delta = stats[key] - before.get(key, 0)
            if delta:
                tracer.count(f"buffer_pool_{key}", delta)

    def _assert_page_budget(self) -> None:
        """The pool's capacity is a hard promise; verify it held."""
        pool = self._engine.pool  # type: ignore[union-attr]
        if pool.resident > pool.capacity or pool.stats["max_resident"] > pool.capacity:
            raise StorageError(
                f"buffer pool exceeded its page budget: "
                f"{pool.stats['max_resident']} resident frames, "
                f"capacity {pool.capacity}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pool_counters(self) -> Dict[str, int]:
        """Buffer-pool statistics of the current materialization."""
        with self._lock:
            if self._engine is None:
                return {}
            return self._engine.counters()

    def storage_manifest(self) -> Dict[str, Any]:
        """The manifest of the current materialization."""
        with self._lock:
            if self._engine is None:
                raise StorageError("disk backend has no materialization yet")
            return self._engine.manifest

    def close(self) -> None:
        with self._lock:
            if self._engine is not None:
                self._engine.close()
                self._engine = None
            self._executor = None
            self._loaded_version = None
            if self._tempdir is not None:
                shutil.rmtree(self._tempdir, ignore_errors=True)
                if self.path == self._tempdir:
                    self.path = None
                self._tempdir = None


register_backend("disk", DiskBackend)
