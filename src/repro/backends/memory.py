"""The in-memory execution backend: the existing engine, behind the
:class:`~repro.backends.base.Backend` protocol.

Execution is delegated unchanged to
:class:`~repro.relational.executor.Executor` (compiled physical plans,
plan cache, index-backed scans).  A :class:`MemoryBackend` can wrap an
existing executor — the engine does exactly that, so backend execution
shares the engine's plan cache — or build its own on :meth:`load`.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.backends.base import Backend, register_backend
from repro.observability import NULL_TRACER
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.result import QueryResult
from repro.sql.ast import Select
from repro.sql.render import ANSI_DIALECT

__all__ = ["MemoryBackend"]


class MemoryBackend(Backend):
    """Executes on the repo's own in-memory engine (the default backend)."""

    name = "memory"
    dialect = ANSI_DIALECT
    capabilities = frozenset({"python-values", "compiled-plans", "trace-operators"})

    def __init__(
        self,
        executor: Optional[Executor] = None,
        compile_plans: bool = True,
        use_hash_joins: bool = True,
        optimizer: str = "cost",
    ) -> None:
        super().__init__()
        self._executor = executor
        self._compile_plans = compile_plans
        self._use_hash_joins = use_hash_joins
        self._optimizer = optimizer
        if executor is not None:
            self.database = executor.database

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            database = self._require_database()
            self._executor = Executor(
                database,
                compile_plans=self._compile_plans,
                use_hash_joins=self._use_hash_joins,
                optimizer=self._optimizer,
            )
        return self._executor

    def load(self, database: Database, tracer: Any = NULL_TRACER) -> None:
        # nothing is copied — the backend executes over the database
        # in place — but the span keeps setup reporting uniform across
        # backends (sqlite/disk do real work here)
        with tracer.span("materialize", backend=self.name):
            if self._executor is not None and self._executor.database is not database:
                self._executor = None
            self.database = database
            tracer.count(
                "materialized_rows",
                sum(len(table) for table in database.tables()),
            )

    def execute(self, query: Union[Select, str], tracer: Any = NULL_TRACER) -> QueryResult:
        result = self.executor.execute(query, tracer=tracer)
        tracer.count("backend_rows", len(result.rows))
        return result


register_backend("memory", MemoryBackend)
