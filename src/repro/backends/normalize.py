"""Canonical result values for cross-backend comparison.

The coercion rules live in this one module so the differential harness's
notion of "equal" is explicit and auditable, not scattered across call
sites.  Two backends agree on a query iff their canonical row multisets
are equal.  The rules, in order:

``bool`` → ``int``
    The in-memory engine keeps Python booleans; SQLite stores 0/1.  Both
    mean the same SQL value.

``float`` → 12 significant digits
    SUM/AVG over floats accumulate in whatever order each backend scans
    rows, so the last few bits of the mantissa legitimately differ.
    ``float(f"{v:.12g}")`` absorbs summation-order noise while still
    catching any real arithmetic bug (wrong rows, integer division,
    missed NULLs) by many orders of magnitude.  Non-finite floats pass
    through unchanged.

``int`` ↔ ``float`` equality is *not* granted
    ``2`` and ``2.0`` stay distinct: aggregate output types are part of
    the contract (:func:`repro.relational.result.normalize_aggregate`
    pins AVG to ``float`` and COUNT to ``int``), so a type drift between
    backends is a bug the harness must report, not paper over.

Ordering is canonical, not semantic: generated SQL never emits ORDER BY
or LIMIT, so results are row *multisets* and comparison sorts both sides
with a null-safe, type-ranked key.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence, Tuple

from repro.relational.algebra import null_safe_sort_key

__all__ = [
    "canonical_row",
    "canonical_rows",
    "canonical_value",
    "rows_match",
]

#: Significant digits retained when canonicalizing floats.
FLOAT_SIGNIFICANT_DIGITS = 12


def canonical_value(value: Any) -> Any:
    """One cell value, coerced to its canonical comparison form."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            return value
        return float(f"{value:.{FLOAT_SIGNIFICANT_DIGITS}g}")
    return value


def canonical_row(row: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(canonical_value(v) for v in row)


def canonical_rows(rows: Iterable[Sequence[Any]]) -> List[Tuple[Any, ...]]:
    """Canonicalized rows in canonical (null-safe, type-ranked) order."""
    return sorted(
        (canonical_row(row) for row in rows),
        key=lambda r: tuple(map(null_safe_sort_key, r)),
    )


def rows_match(left: Iterable[Sequence[Any]], right: Iterable[Sequence[Any]]) -> bool:
    """True iff the two row multisets are canonically equal.

    Comparison is type-strict: plain ``==`` would let Python's numeric
    tower declare ``2 == 2.0``, hiding exactly the aggregate-type drift
    this module promises to report.
    """
    lc, rc = canonical_rows(left), canonical_rows(right)
    if len(lc) != len(rc):
        return False
    for lrow, rrow in zip(lc, rc):
        if len(lrow) != len(rrow):
            return False
        for lv, rv in zip(lrow, rrow):
            if lv != rv or type(lv) is not type(rv):
                return False
    return True
