"""The SQLite execution backend: run the rendered SQL on a real RDBMS.

:class:`SqliteBackend` materializes any
:class:`~repro.relational.database.Database` into a ``sqlite3`` database —
in-memory by default, on disk when constructed with ``path=...`` — with:

* **typed columns** (INT → ``INTEGER``, FLOAT → ``REAL``, TEXT/DATE →
  ``TEXT``, BOOL → ``INTEGER``, matching SQLite's storage classes);
* **primary keys and foreign keys** straight from the schema catalog,
  validated after load via ``PRAGMA foreign_key_check`` (the same deferred
  discipline as :meth:`Database.check_foreign_keys` — datasets load parents
  and children in one pass);
* **indexes mirroring** ``repro/relational/index.py``: one index per
  foreign key (the hash-join columns :meth:`Database.hash_index` serves)
  plus the automatic primary-key index.  The inverted text index has no
  SQLite counterpart — ``LIKE '%...%'`` cannot use a B-tree — which is
  exactly the kind of asymmetry the differential harness exists to keep
  honest.

Statements are rendered with :data:`~repro.sql.render.SQLITE_DIALECT`
(quote-everything identifiers, integer booleans, escaped LIKE wildcards,
``CAST``-protected division) and executed by SQLite itself, so translator
bugs that the in-memory executor would share cannot hide.

Materialization is lazy and keyed to :attr:`Database.data_version`: the
first ``execute`` after a data change rebuilds the SQLite side.  This is
the only module in the repo allowed to import ``sqlite3`` (lint rule
LR006).
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.backends.base import Backend, register_backend
from repro.errors import BackendError
from repro.observability import NULL_TRACER
from repro.relational.database import Database
from repro.relational.result import QueryResult
from repro.relational.schema import RelationSchema
from repro.relational.types import DataType
from repro.sql.ast import Select
from repro.sql.render import SQLITE_DIALECT, quote_identifier, render

__all__ = ["SqliteBackend"]

_TYPE_AFFINITY = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "TEXT",
    DataType.DATE: "TEXT",
    DataType.BOOL: "INTEGER",
}


def _q(name: str) -> str:
    return quote_identifier(name, SQLITE_DIALECT)


def _to_storage(value: Any) -> Any:
    """Convert one Python cell value to its SQLite storage value."""
    if isinstance(value, bool):
        return int(value)
    return value


class SqliteBackend(Backend):
    """Executes rendered SQL on a ``sqlite3`` database built from the
    bound :class:`Database`."""

    name = "sqlite"
    dialect = SQLITE_DIALECT
    capabilities = frozenset({"persistent", "sql-text", "real-rdbms"})

    def __init__(
        self,
        path: Optional[str] = None,
        index_hints: Union[str, Iterable[Tuple[str, str]], None] = None,
    ) -> None:
        """*index_hints* adds secondary indexes beyond the foreign-key
        ones: ``"auto"`` derives them from planner statistics
        (:func:`repro.planner.recommend_indexes`, what the engine passes
        when its optimizer is on), an iterable of ``(table, column)``
        pairs names them explicitly, None (the default) keeps the
        foreign-key-only behavior."""
        super().__init__()
        self.path = path
        self.index_hints = index_hints
        self._conn: Optional[sqlite3.Connection] = None
        self._loaded_version: Optional[Tuple[int, int]] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Loading / materialization
    # ------------------------------------------------------------------
    def load(self, database: Database, tracer: Any = NULL_TRACER) -> None:
        with self._lock:
            self.database = database
            self._materialize(tracer)

    def _materialize(self, tracer: Any = NULL_TRACER) -> None:
        database = self._require_database()
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        target = self.path if self.path is not None else ":memory:"
        # one connection shared across threads, serialized by self._lock
        conn = sqlite3.connect(target, check_same_thread=False)
        with tracer.span("materialize", backend=self.name):
            rows_loaded = 0
            try:
                for relation in database.schema:
                    conn.execute(f"DROP TABLE IF EXISTS {_q(relation.name)}")
                    conn.execute(self._create_table_sql(relation))
                for relation in database.schema:
                    table = database.table(relation.name)
                    if not table.rows:
                        continue
                    placeholders = ", ".join("?" for _ in relation.columns)
                    conn.executemany(
                        f"INSERT INTO {_q(relation.name)} VALUES ({placeholders})",
                        (tuple(_to_storage(v) for v in row) for row in table.rows),
                    )
                    rows_loaded += len(table.rows)
                for statement in self._index_sql(database):
                    conn.execute(statement)
                conn.execute("PRAGMA foreign_keys = ON")
                conn.commit()
            except sqlite3.Error as exc:
                conn.close()
                raise BackendError(f"sqlite materialization failed: {exc}") from exc
            tracer.count("materialized_rows", rows_loaded)
        self._conn = conn
        self._loaded_version = database.data_version

    def _create_table_sql(self, relation: RelationSchema) -> str:
        columns = [
            f"{_q(col.name)} {_TYPE_AFFINITY[col.dtype]}" for col in relation.columns
        ]
        constraints = [
            "PRIMARY KEY (" + ", ".join(_q(c) for c in relation.primary_key) + ")"
        ]
        for fk in relation.foreign_keys:
            constraints.append(
                "FOREIGN KEY ("
                + ", ".join(_q(c) for c in fk.columns)
                + f") REFERENCES {_q(fk.ref_table)} ("
                + ", ".join(_q(c) for c in fk.ref_columns)
                + ")"
            )
        body = ", ".join(columns + constraints)
        return f"CREATE TABLE {_q(relation.name)} ({body})"

    def _index_sql(self, database: Database) -> List[str]:
        """One index per foreign key (the columns
        :meth:`Database.hash_index` builds hash joins over), plus any
        hinted secondary indexes."""
        statements: List[str] = []
        seen: set = set()
        for relation in database.schema:
            for fk in relation.foreign_keys:
                key = (relation.name, fk.columns)
                if key in seen:
                    continue
                seen.add(key)
                statements.append(self._create_index_sql(relation.name, fk.columns))
        for table, column in self._hinted_indexes(database):
            key = (table, (column,))
            if key in seen:
                continue
            seen.add(key)
            statements.append(self._create_index_sql(table, (column,)))
        return statements

    def _hinted_indexes(self, database: Database) -> List[Tuple[str, str]]:
        """Resolve ``index_hints`` into concrete ``(table, column)`` pairs."""
        hints = self.index_hints
        if hints is None:
            return []
        if hints == "auto":
            # imported lazily: repro.planner sits above the backends'
            # dependencies and is only needed when hints are requested
            from repro.planner import StatisticsCatalog, recommend_indexes

            return recommend_indexes(StatisticsCatalog(database))
        return [(table, column) for table, column in hints]

    @staticmethod
    def _create_index_sql(table: str, columns: Tuple[str, ...]) -> str:
        index_name = "ix_" + "_".join((table,) + tuple(columns))
        return (
            f"CREATE INDEX IF NOT EXISTS {_q(index_name)} ON {_q(table)} ("
            + ", ".join(_q(c) for c in columns)
            + ")"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _ensure_fresh(self, tracer: Any = NULL_TRACER) -> sqlite3.Connection:
        database = self._require_database()
        if self._conn is None or self._loaded_version != database.data_version:
            self._materialize(tracer)
        assert self._conn is not None
        return self._conn

    def execute(self, query: Union[Select, str], tracer: Any = NULL_TRACER) -> QueryResult:
        if isinstance(query, str):
            from repro.sql.parser import parse

            select = parse(query)
        else:
            select = query
        sql = render(select, self.dialect)
        columns = [
            item.output_name(default=f"col{i + 1}")
            for i, item in enumerate(select.items)
        ]
        with self._lock:
            conn = self._ensure_fresh(tracer)
            with tracer.span("execute", backend=self.name):
                try:
                    cursor = conn.execute(sql)
                    rows = [tuple(row) for row in cursor.fetchall()]
                except sqlite3.Error as exc:
                    raise BackendError(
                        f"sqlite execution failed: {exc} (sql: {sql})"
                    ) from exc
                tracer.count("backend_rows", len(rows))
        return QueryResult(columns, rows)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def foreign_key_violations(self) -> List[Tuple[str, int, str, int]]:
        """Rows of ``PRAGMA foreign_key_check`` (empty when integrity holds)."""
        with self._lock:
            conn = self._ensure_fresh()
            return [tuple(row) for row in conn.execute("PRAGMA foreign_key_check")]

    def row_counts(self) -> Dict[str, int]:
        """Materialized per-table row counts, straight from SQLite."""
        database = self._require_database()
        counts: Dict[str, int] = {}
        with self._lock:
            conn = self._ensure_fresh()
            for relation in database.schema:
                cursor = conn.execute(
                    f"SELECT COUNT(*) FROM {_q(relation.name)}"
                )
                counts[relation.name] = int(cursor.fetchone()[0])
        return counts

    def index_names(self) -> List[str]:
        """Names of the explicitly created indexes (``ix_*``)."""
        with self._lock:
            conn = self._ensure_fresh()
            cursor = conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' "
                "AND name LIKE 'ix_%' ORDER BY name"
            )
            return [row[0] for row in cursor.fetchall()]

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
                self._loaded_version = None


register_backend("sqlite", SqliteBackend)
