"""``repro diff`` — the differential correctness harness.

Every SQL statement the pipeline generates for the evaluation workload is
executed on **independent backends** — the in-memory engine
(:class:`~repro.backends.memory.MemoryBackend`, compiled physical plans)
and a real RDBMS (:class:`~repro.backends.sqlite.SqliteBackend`, rendered
SQL) — and the results are asserted equivalent as canonical row multisets
(the coercion rules live in :mod:`repro.backends.normalize`).  With
``--backend disk`` the sweep becomes three-way: the paged storage engine
(:class:`~repro.backends.disk.DiskBackend`, compiled plans over heap
files and on-disk indexes) joins as a third leg, each leg diffed against
the in-memory reference.

The sweep covers the same workload as ``repro check`` (Tables 3 and 4 on
tpch / acmdl, normalized and §4.1-denormalized — the unnormalized datasets
exercise the fragment-join rewriter end to end) plus the university and
enrolment example queries, each through:

* the semantic engine — the top-k interpretations per query, and
* the SQAK baseline — each compiled statement (queries the baseline
  cannot express are skipped, as in the paper).

Any disagreement is a bug in the executor, the renderer, the dialect
layer, or the materialization — the harness does not care which, it just
refuses to pass.  The exit code is the number of mismatching statements
(capped at 1), so the command doubles as a CI gate.

Counters: ``diff_queries`` (statements compared) and ``diff_mismatches``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.backends.base import Backend, create_backend
from repro.backends.memory import MemoryBackend
from repro.backends.normalize import canonical_rows, rows_match
from repro.errors import ReproError, UnsupportedQueryError
from repro.observability import NULL_TRACER
from repro.sql.ast import Select
from repro.sql.render import render

DIFF_DATASETS = (
    "university",
    "enrolment",
    "tpch",
    "tpch-unnorm",
    "acmdl",
    "acmdl-unnorm",
)

#: Example queries for the university/enrolment schemas (the paper's
#: running examples; the tpch/acmdl workloads come from
#: :mod:`repro.experiments.queries`).
UNIVERSITY_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("U1", "Green SUM Credit"),
    ("U2", "COUNT Student GROUPBY Course"),
    ("U3", "MAX COUNT Student"),
    ("U4", "AVG Credit"),
    ("U5", "Green George COUNT Code"),
    ("U6", "24 COUNT Code"),
    ("U7", "Java SUM Price"),
    ("U8", "Grade COUNT Student"),
)

ENROLMENT_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("E1", "Green SUM Credit"),
    ("E2", "24 COUNT Code"),
    ("E3", "Green George Code"),
)


@dataclass
class Mismatch:
    """One statement the two backends disagree on."""

    dataset: str
    qid: str
    source: str  # "semantic" or "sqak"
    sql: str
    detail: str
    backend: str = "sqlite"  # the leg that disagreed with memory

    def render(self) -> str:
        return (
            f"{self.dataset} {self.qid} [{self.source}] {self.backend} "
            f"MISMATCH: {self.detail}\n  {self.sql}"
        )


@dataclass
class DiffReport:
    """Outcome of a differential sweep."""

    statements: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    per_dataset: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _describe_rows(rows: List[Tuple[Any, ...]], limit: int = 3) -> str:
    shown = ", ".join(repr(r) for r in rows[:limit])
    suffix = ", ..." if len(rows) > limit else ""
    return f"{len(rows)} rows [{shown}{suffix}]"


def diff_statement(
    memory: MemoryBackend,
    sqlite: Backend,
    select: Select,
    tracer: Any = NULL_TRACER,
) -> Optional[str]:
    """Run *select* on both backends; ``None`` on agreement, else a
    human-readable description of the disagreement.

    The second backend is any :class:`~repro.backends.base.Backend` —
    the parameter keeps its historical name for compatibility."""
    label = getattr(sqlite, "name", "sqlite")
    tracer.count("diff_queries")
    try:
        memory_rows = canonical_rows(memory.execute(select, tracer=tracer).rows)
        sqlite_rows = canonical_rows(sqlite.execute(select, tracer=tracer).rows)
    except ReproError as exc:
        tracer.count("diff_mismatches")
        return f"backend error: {exc}"
    if rows_match(memory_rows, sqlite_rows):
        return None
    tracer.count("diff_mismatches")
    return (
        f"memory={_describe_rows(memory_rows)} vs "
        f"{label}={_describe_rows(sqlite_rows)}"
    )


def _workload(dataset: str) -> List[Tuple[str, str]]:
    if dataset == "university":
        return list(UNIVERSITY_QUERIES)
    if dataset == "enrolment":
        return list(ENROLMENT_QUERIES)
    from repro.experiments.queries import ACMDL_QUERIES, TPCH_QUERIES

    specs = TPCH_QUERIES if dataset.startswith("tpch") else ACMDL_QUERIES
    return [(spec.qid, spec.text) for spec in specs]


def _sqak_na(dataset: str) -> Dict[str, bool]:
    if dataset in ("university", "enrolment"):
        return {}
    from repro.experiments.queries import ACMDL_QUERIES, TPCH_QUERIES

    specs = TPCH_QUERIES if dataset.startswith("tpch") else ACMDL_QUERIES
    return {spec.qid: spec.sqak_na for spec in specs}


def collect_statements(
    dataset: str, k: int = 10, skip_sqak: bool = False
) -> Tuple[Any, List[Tuple[str, str, Select]]]:
    """Compile the dataset's workload; returns the database plus
    deduplicated ``(qid, source, select)`` statements."""
    # lazy: repro.backends must stay importable without the engine layer
    from repro.baselines import SqakEngine
    from repro.cli import load_dataset
    from repro.engine import KeywordSearchEngine

    database, fds, hints, extra_joins = load_dataset(dataset)
    engine = KeywordSearchEngine(database, fds=fds or None, name_hints=hints or None)
    statements: List[Tuple[str, str, Select]] = []
    seen: set = set()
    for qid, text in _workload(dataset):
        for interpretation in engine.compile(text, k=k):
            key = render(interpretation.select)
            if key not in seen:
                seen.add(key)
                statements.append((qid, "semantic", interpretation.select))
    if not skip_sqak and dataset not in ("university", "enrolment"):
        sqak = SqakEngine(database, extra_joins=extra_joins)
        sqak_na = _sqak_na(dataset)
        for qid, text in _workload(dataset):
            if sqak_na.get(qid):
                continue
            try:
                statement = sqak.compile(text)
            except UnsupportedQueryError:
                continue
            key = render(statement.select)
            if key not in seen:
                seen.add(key)
                statements.append((qid, "sqak", statement.select))
    return database, statements


def diff_dataset(
    dataset: str,
    k: int = 10,
    skip_sqak: bool = False,
    tracer: Any = NULL_TRACER,
    report: Optional[DiffReport] = None,
    backends: Tuple[str, ...] = ("sqlite",),
    optimizer: str = "cost",
) -> DiffReport:
    """Differential sweep over one dataset's workload.

    Each backend named in *backends* is diffed against the in-memory
    reference on every statement (``("sqlite", "disk")`` makes the sweep
    three-way).  *optimizer* sets the plan-choice policy on the legs that
    compile plans (memory and disk); the sweep is the cross-backend gate
    that cost-based join reordering never changes results."""
    report = report if report is not None else DiffReport()
    database, statements = collect_statements(dataset, k=k, skip_sqak=skip_sqak)
    memory = MemoryBackend(optimizer=optimizer)
    memory.load(database)
    legs = []
    for name in backends:
        options: Dict[str, Any] = {"optimizer": optimizer} if name == "disk" else {}
        legs.append(create_backend(name, database, tracer=tracer, **options))
    try:
        for qid, source, select in statements:
            report.statements += 1
            report.per_dataset[dataset] = report.per_dataset.get(dataset, 0) + 1
            for leg in legs:
                detail = diff_statement(memory, leg, select, tracer=tracer)
                if detail is not None:
                    report.mismatches.append(
                        Mismatch(
                            dataset, qid, source, render(select), detail,
                            backend=leg.name,
                        )
                    )
    finally:
        for leg in legs:
            leg.close()
    return report


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro diff",
        description=(
            "execute every workload statement on both the in-memory engine "
            "and SQLite, asserting identical results; exit non-zero on any "
            "disagreement"
        ),
    )
    parser.add_argument(
        "--dataset",
        action="append",
        choices=DIFF_DATASETS,
        dest="datasets",
        help="dataset to diff (repeatable; default: all)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="interpretations to execute per query (default: 10)",
    )
    parser.add_argument(
        "--skip-sqak",
        action="store_true",
        help="only diff the semantic engine",
    )
    parser.add_argument(
        "--backend",
        choices=("sqlite", "disk"),
        default="sqlite",
        help=(
            "extra leg to diff against the in-memory reference: sqlite "
            "(default, two-way) or disk (three-way — sqlite AND the "
            "paged storage engine)"
        ),
    )
    parser.add_argument(
        "--optimizer",
        choices=("cost", "off"),
        default="cost",
        help=(
            "plan-choice policy on the compiling legs: cost (default, "
            "statistics-driven join reordering) or off (size-only greedy "
            "heuristic)"
        ),
    )
    return parser


def run_diff(argv: Optional[List[str]] = None, out: Any = None) -> int:
    import sys

    from repro.observability import Tracer

    out = out or sys.stdout
    args = build_diff_parser().parse_args(argv)
    datasets = args.datasets or list(DIFF_DATASETS)
    backends = ("sqlite", "disk") if args.backend == "disk" else ("sqlite",)
    tracer = Tracer()
    report = DiffReport()
    for dataset in datasets:
        before = len(report.mismatches)
        diff_dataset(
            dataset, k=args.top, skip_sqak=args.skip_sqak,
            tracer=tracer, report=report, backends=backends,
            optimizer=args.optimizer,
        )
        bad = len(report.mismatches) - before
        status = "ok" if bad == 0 else f"{bad} MISMATCHES"
        print(
            f"{dataset}: {report.per_dataset.get(dataset, 0)} statements, {status}",
            file=out,
        )
    for mismatch in report.mismatches:
        print(mismatch.render(), file=out)
    print(
        f"diff: {report.statements} statements compared on "
        f"memory vs {', '.join(backends)}, "
        f"{len(report.mismatches)} mismatches",
        file=out,
    )
    return 1 if report.mismatches else 0
