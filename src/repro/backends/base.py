"""The execution-backend abstraction.

A :class:`Backend` turns a :class:`~repro.relational.database.Database`
plus a :class:`~repro.sql.ast.Select` into a
:class:`~repro.relational.result.QueryResult`.  Two implementations ship
with the repo:

* :class:`~repro.backends.memory.MemoryBackend` — the hand-rolled
  in-memory engine (``repro.relational.executor`` / ``CompiledPlan``),
  unchanged; the default everywhere.
* :class:`~repro.backends.sqlite.SqliteBackend` — materializes the
  database into a real ``sqlite3`` database and executes the rendered SQL
  there, so the translated SQL is checked against an independent SQL
  implementation.

Backends are registered by name; :func:`create_backend` is the one
construction path the engine, service, CLI and differential harness share.
Capability flags describe what a backend can and cannot do so callers can
route around limitations instead of discovering them as runtime errors.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Union

from repro.errors import BackendError
from repro.observability import NULL_TRACER
from repro.relational.database import Database
from repro.relational.result import QueryResult
from repro.sql.ast import Select
from repro.sql.render import ANSI_DIALECT, SqlDialect

__all__ = [
    "Backend",
    "available_backends",
    "create_backend",
    "register_backend",
]


class Backend(abc.ABC):
    """One way of executing SELECT statements against a database.

    Class attributes (per implementation):

    ``name``
        The registry key (``"memory"``, ``"sqlite"``).
    ``dialect``
        The :class:`~repro.sql.render.SqlDialect` the backend's SQL text
        is rendered in.
    ``capabilities``
        Frozen set of capability flags.  The ones currently meaningful:
        ``"python-values"`` (results carry native Python values, e.g.
        ``bool``), ``"persistent"`` (can keep data on disk),
        ``"compiled-plans"`` (executes through the repo's own physical
        plans), ``"sql-text"`` (executes the rendered SQL text itself, so
        rendering bugs are observable).
    """

    name: str = "abstract"
    dialect: SqlDialect = ANSI_DIALECT
    capabilities: FrozenSet[str] = frozenset()

    def __init__(self) -> None:
        self.database: Optional[Database] = None

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def load(self, database: Database, tracer: Any = NULL_TRACER) -> None:
        """Bind (and materialize, where applicable) *database*.

        Implementations report setup work inside a ``materialize`` span
        on *tracer* (with row/page counters), so ``--explain`` output
        attributes backend setup time instead of folding it into the
        first query."""

    @abc.abstractmethod
    def execute(self, query: Union[Select, str], tracer: Any = NULL_TRACER) -> QueryResult:
        """Execute a SELECT AST (or SQL text) and return its result."""

    def sql_for(self, select: Select) -> str:
        """The SQL text this backend would execute for *select*."""
        from repro.sql.render import render

        return render(select, self.dialect)

    def supports(self, capability: str) -> bool:
        return capability in self.capabilities

    def close(self) -> None:
        """Release backend resources (connections, file handles)."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_database(self) -> Database:
        if self.database is None:
            raise BackendError(f"backend {self.name!r} has no database loaded")
        return self.database

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        db = self.database.schema.name if self.database is not None else None
        return f"{type(self).__name__}(database={db!r})"


_REGISTRY: Dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under *name* (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, default first."""
    names = sorted(_REGISTRY)
    if "memory" in names:
        names.remove("memory")
        names.insert(0, "memory")
    return names


def create_backend(
    name: str,
    database: Database,
    tracer: Any = NULL_TRACER,
    **options: Any,
) -> Backend:
    """Construct the backend registered as *name* and load *database*.

    ``options`` are forwarded to the backend factory (``path=...`` selects
    an on-disk location for the SQLite and disk backends, ``executor=...``
    shares an existing executor with the memory backend).  *tracer*
    observes the initial materialization (``materialize`` span).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r} (available: {', '.join(available_backends())})"
        ) from None
    backend = factory(**options)
    backend.load(database, tracer=tracer)
    return backend
