"""Pluggable execution backends (see ``docs/BACKENDS.md``).

A :class:`~repro.backends.base.Backend` executes SELECT statements
against a loaded :class:`~repro.relational.database.Database`.  Three
ship with the repo — the in-memory engine (``"memory"``, the default), a
real SQLite database (``"sqlite"``), and the paged storage engine
(``"disk"``, compiled plans over heap files + a buffer pool; see
``docs/STORAGE.md``) — and :mod:`repro.backends.differential` keeps them
agreeing on every workload query (``python -m repro diff``).
"""

from repro.backends.base import (
    Backend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.backends.disk import DiskBackend
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend

__all__ = [
    "Backend",
    "DiskBackend",
    "MemoryBackend",
    "SqliteBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]
