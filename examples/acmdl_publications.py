#!/usr/bin/env python3
"""Digital-library keyword queries over the ACMDL database.

Reproduces the A-suite comparison (Table 6) and demonstrates the two
capabilities SQAK lacks: multiple aggregates in one query (A6) and
self-joins from several value terms on the same relation (A7/A8).

Usage::

    python examples/acmdl_publications.py
"""

from __future__ import annotations

from repro import KeywordSearchEngine
from repro.baselines import SqakEngine
from repro.datasets import generate_acmdl
from repro.errors import UnsupportedQueryError
from repro.experiments import ACMDL_QUERIES, format_answer_table, run_suite


def main() -> None:
    db = generate_acmdl()
    print(db.summary())
    print()

    engine = KeywordSearchEngine(db)
    sqak = SqakEngine(db)

    outcomes = run_suite(engine, sqak, ACMDL_QUERIES)
    print(format_answer_table("Table 6 - answers on normalized ACMDL", outcomes))
    print()

    # ------------------------------------------------------------------
    # A7: a self-join query SQAK refuses
    # ------------------------------------------------------------------
    text = "COUNT paper author John Mary"
    print(f"Query {text!r}:")
    try:
        sqak.compile(text)
    except UnsupportedQueryError as exc:
        print(f"  SQAK: N.A. ({exc})")
    result = engine.search(text)
    chosen = result.find(distinguishes=True)
    print("  ours:")
    print("    " + chosen.description)
    for line in chosen.sql.splitlines():
        print("    " + line)
    print("  answers (papers per John-Mary author pair):")
    for line in chosen.execute().format_table(max_rows=6).splitlines():
        print("    " + line)
    print()

    # ------------------------------------------------------------------
    # interpretation ranking: the same keyword, different readings
    # ------------------------------------------------------------------
    print("Interpretations of 'paper MAX date Gill':")
    for interpretation in engine.search("paper MAX date Gill").interpretations[:4]:
        print(f"  #{interpretation.rank} "
              f"(distinguishes={interpretation.distinguishes}): "
              f"{interpretation.description}")


if __name__ == "__main__":
    main()
