#!/usr/bin/env python3
"""Bring your own data: build, persist, profile and query a custom database.

A downstream user's workflow on a fresh domain (a tiny movie-rental shop):

1. declare a schema and load rows,
2. save it to a CSV directory and reload it (``repro.relational.io``),
3. profile it (``repro.relational.statistics``),
4. let the engine suggest starter queries (``repro.keywords.suggest``),
5. run keyword aggregate queries against it.

Usage::

    python examples/bring_your_own_data.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import KeywordSearchEngine
from repro.keywords import NormalizedCatalog, complete_term, suggest_queries
from repro.relational import (
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    analyze_database,
    load_database,
    save_database,
)

INT = DataType.INT
TEXT = DataType.TEXT
FLOAT = DataType.FLOAT
DATE = DataType.DATE


def build_rental_shop() -> Database:
    schema = DatabaseSchema("rentals")
    schema.add_relation(
        "Movie",
        [("mid", INT), ("title", TEXT), ("genre", TEXT), ("fee", FLOAT)],
        ["mid"],
    )
    schema.add_relation(
        "Member",
        [("memid", INT), ("mname", TEXT), ("city", TEXT)],
        ["memid"],
    )
    schema.add_relation(
        "Rental",
        [("mid", INT), ("memid", INT), ("day", DATE)],
        ["mid", "memid", "day"],
        [
            ForeignKey(("mid",), "Movie", ("mid",)),
            ForeignKey(("memid",), "Member", ("memid",)),
        ],
    )
    db = Database(schema)
    db.load(
        "Movie",
        [
            (1, "The Long Join", "drama", 3.5),
            (2, "Hash Wars", "action", 4.0),
            (3, "Hash Wars", "documentary", 2.5),  # a remake: same title!
            (4, "Group By Night", "noir", 3.0),
        ],
    )
    db.load(
        "Member",
        [
            (1, "Ada", "Basel"),
            (2, "Grace", "Basel"),
            (3, "Edgar", "Zurich"),
        ],
    )
    db.load(
        "Rental",
        [
            (1, 1, "2024-01-05"),
            (2, 1, "2024-01-06"),
            (2, 2, "2024-01-06"),
            (3, 2, "2024-01-08"),
            (3, 3, "2024-01-09"),
            (4, 3, "2024-01-10"),
            (1, 3, "2024-01-11"),
        ],
    )
    db.check_foreign_keys()
    return db


def main() -> None:
    db = build_rental_shop()

    # ------------------------------------------------------------------
    # persist + reload
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "rentals"
        save_database(db, target)
        files = sorted(p.name for p in target.iterdir())
        print(f"saved to {target.name}/: {', '.join(files)}")
        db = load_database(target)

    # ------------------------------------------------------------------
    # profile
    # ------------------------------------------------------------------
    print()
    for stats in analyze_database(db).values():
        print(stats.format())

    # ------------------------------------------------------------------
    # suggestions
    # ------------------------------------------------------------------
    catalog = NormalizedCatalog(db)
    print("\nstarter queries the schema suggests:")
    for text in suggest_queries(catalog):
        print(f"  {text}")
    print("\ncompletions of 'ha':")
    for suggestion in complete_term(catalog, "ha"):
        print(f"  {suggestion}")

    # ------------------------------------------------------------------
    # keyword aggregate queries
    # ------------------------------------------------------------------
    engine = KeywordSearchEngine(db)
    queries = [
        "COUNT Member GROUPBY Movie",
        "AVG fee GROUPBY genre",
        'COUNT Member "Hash Wars"',  # two distinct movies share the title
    ]
    for text in queries:
        print()
        print("=" * 60)
        print(f"query: {text!r}")
        result = engine.search(text, k=2)
        for interpretation in result.interpretations:
            print(f"-- #{interpretation.rank}: {interpretation.description}")
            print(interpretation.execute().format_table())


if __name__ == "__main__":
    main()
