#!/usr/bin/env python3
"""Keyword search over an unnormalized database (Section 4 end to end).

Walks through everything the paper's Section 4 describes, on the Figure-8
Enrolment relation and on the denormalized TPC-H:

1. 3NF violation detection from declared functional dependencies,
2. the synthesized normalized view and its fragment mappings (Example 8),
3. pattern generation over the view and translation back to the stored
   relations (Example 9),
4. the rewrite rules collapsing fragment joins (Example 10),
5. the answers staying identical to the normalized database (Table 8).

Usage::

    python examples/unnormalized_database.py
"""

from __future__ import annotations

from repro import KeywordSearchEngine
from repro.datasets import denormalize_tpch, enrolment_database, generate_tpch
from repro.fd import attrs, parse_fds, violations_3nf


def enrolment_walkthrough() -> None:
    print("=" * 72)
    print("Figure 8: the unnormalized Enrolment relation")
    db = enrolment_database()
    print(db.summary())

    fds = parse_fds(["Sid -> Sname, Age", "Code -> Title, Credit"])
    universe = attrs(*db.table("Enrolment").schema.column_names)
    print("\n3NF violations under the declared FDs:")
    for violation in violations_3nf(universe, fds):
        print(f"  {violation}")

    engine = KeywordSearchEngine(
        db, fds={"Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]}
    )
    print("\n" + engine.view.describe())

    print("\nQ4 = 'Green George COUNT Code' on the unnormalized database:")
    chosen = engine.search("Green George COUNT Code").find(distinguishes=True)
    print(chosen.sql)
    print(chosen.execute().format_table())
    print("(identical to the normalized answers: s2 -> 1, s3 -> 2)")

    raw_engine = KeywordSearchEngine(
        db,
        fds={"Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]},
        rewrite_sql=False,
    )
    raw = raw_engine.search("Green George COUNT Code").find(distinguishes=True)
    print("\nWithout the Section-4.1 rewrite rules the SQL joins "
          f"{raw.sql_compact.count('(SELECT')} fragment subqueries instead "
          "of 2 base-table scans.")


def tpch_walkthrough() -> None:
    print()
    print("=" * 72)
    print("TPCH': the denormalized TPC-H of Table 7")
    dataset = denormalize_tpch(generate_tpch())
    print(dataset.database.summary())

    engine = KeywordSearchEngine(
        dataset.database, fds=dataset.fds, name_hints=dataset.name_hints
    )
    print("\n" + engine.view.describe())

    print("\nT5 = 'COUNT supplier \"Indian black chocolate\"' on TPCH':")
    chosen = engine.search('COUNT supplier "Indian black chocolate"').best
    print(chosen.sql)
    print(chosen.execute().format_table())
    print("(the DISTINCT projections deduplicate the wide Ordering rows; "
          "the answer is the true supplier count, as on normalized TPC-H)")


def main() -> None:
    enrolment_walkthrough()
    tpch_walkthrough()


if __name__ == "__main__":
    main()
