#!/usr/bin/env python3
"""Quickstart: keyword search with aggregates on the paper's university DB.

Runs the introduction's queries Q1 and Q2 end to end and shows why the ORA
semantics matter: the ORM schema graph, the ranked interpretations, the
generated SQL and the executed answers.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import KeywordSearchEngine
from repro.datasets import university_database


def main() -> None:
    db = university_database()
    print(db.summary())
    print()

    engine = KeywordSearchEngine(db)
    print(engine.graph.describe())
    print()

    # ------------------------------------------------------------------
    # Q1 = {Green SUM Credit}: two different students are called Green
    # ------------------------------------------------------------------
    print("=" * 72)
    print('Q1 = "Green SUM Credit"')
    result = engine.search("Green SUM Credit")
    for interpretation in result.interpretations[:2]:
        print(f"\n-- interpretation #{interpretation.rank}: "
              f"{interpretation.description}")
        print(interpretation.sql)
        print(interpretation.execute().format_table())

    # ------------------------------------------------------------------
    # Q2 = {Java SUM Price}: the ternary Teach relationship duplicates
    # textbooks unless the translator projects them out
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print('Q2 = "Java SUM Price"')
    chosen = engine.search("Java SUM Price").best
    print(f"\n-- {chosen.description}")
    print(chosen.sql)
    print(chosen.execute().format_table())
    print("\n(SQAK would return 35 here: textbook b1 counted twice.)")

    # ------------------------------------------------------------------
    # plain keyword queries work too (the Section-2.1 example)
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print('Section 2.1 = "Green George Code" (common courses, no aggregate)')
    chosen = engine.search("Green George Code").best
    print(chosen.sql)
    print(chosen.execute().format_table())

    # ------------------------------------------------------------------
    # nested aggregates: Example 7
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print('Example 7 = "AVG COUNT Lecturer GROUPBY Course"')
    chosen = engine.search("AVG COUNT Lecturer GROUPBY Course").best
    print(chosen.sql)
    print(chosen.execute().format_table())

    # ------------------------------------------------------------------
    # where does the time go?  trace=True returns a per-stage span tree
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print('Traced = engine.search("COUNT Lecturer GROUPBY Course", trace=True)')
    result = engine.search("COUNT Lecturer GROUPBY Course", trace=True)
    result.best.execute()          # lazy execution joins the same trace
    print(result.trace.render())
    print("\nper-stage milliseconds:")
    for stage, seconds in result.trace.stage_times().items():
        print(f"  {stage:<14}{seconds * 1000.0:8.3f}")


if __name__ == "__main__":
    main()
