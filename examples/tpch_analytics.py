#!/usr/bin/env python3
"""Business-analytics keyword queries over the TPC-H database.

The scenario the paper's introduction motivates: an analyst who does not
know the schema asks statistical questions with keywords.  Shows the T-suite
queries, the comparison with SQAK, and a few extra analytics queries beyond
the paper's evaluation.

Usage::

    python examples/tpch_analytics.py
"""

from __future__ import annotations

from repro import KeywordSearchEngine
from repro.baselines import SqakEngine
from repro.datasets import generate_tpch
from repro.experiments import (
    TPCH_QUERIES,
    format_answer_table,
    format_comparison_row,
    run_suite,
)


def main() -> None:
    db = generate_tpch()
    print(db.summary())
    print()

    engine = KeywordSearchEngine(db)
    sqak = SqakEngine(db)

    # ------------------------------------------------------------------
    # the paper's evaluation suite, side by side with SQAK (Table 5)
    # ------------------------------------------------------------------
    outcomes = run_suite(engine, sqak, TPCH_QUERIES)
    print(format_answer_table("Table 5 - answers on normalized TPC-H", outcomes))
    print()

    # the generated SQL for the headline disagreement (T5)
    t5 = next(outcome for outcome in outcomes if outcome.spec.qid == "T5")
    print("T5 semantic SQL (note the DISTINCT foreign-key projection):")
    print("  " + t5.semantic_sql)
    print("T5 SQAK SQL (counts supplier-order pairs):")
    print("  " + (t5.sqak_sql or "N.A."))
    print()

    # ------------------------------------------------------------------
    # further ad-hoc analytics beyond the paper's suite
    # ------------------------------------------------------------------
    extras = [
        "MIN retailprice",
        "AVG acctbal GROUPBY nation",
        "COUNT customer GROUPBY mktsegment",
        "COUNT supplier GROUPBY nation",
    ]
    print("Ad-hoc analytics:")
    for text in extras:
        best = engine.search(text).best
        rows = best.execute()
        print(f"\n  {text!r} -> {best.description}")
        for line in rows.format_table(max_rows=5).splitlines():
            print("    " + line)


if __name__ == "__main__":
    main()
