#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one run.

Prints Tables 5, 6, 8 and 9, both Figure-11 timing series and a traced
per-stage pipeline breakdown for each evaluation query set, in the same
row/series structure as the paper.  Absolute values differ (synthetic data,
different hardware); the qualitative shape — who is correct, who
over-counts, what is N.A. — is the reproduction target and is also checked
by ``tests/experiments``.

The closing breakdown tables come from the observability layer
(``docs/OBSERVABILITY.md``): every query is re-run with ``trace=True`` and
the per-stage span timings are aggregated, so each Figure-11 headline
number can be decomposed into parse/match/generate/.../translate time.

Usage::

    python examples/reproduce_paper.py     # equivalently: python -m repro --reproduce
"""

from __future__ import annotations

from repro.experiments.report import full_report


if __name__ == "__main__":
    full_report()
