#!/usr/bin/env python
"""Project-specific AST lint for the repro codebase.

Rules (all violations are errors; exit code = number of findings):

* **LR001** — no bare ``except:`` clauses: always name the exceptions a
  handler is prepared for.
* **LR002** — ``Tracer()`` may only be constructed at the pipeline
  entry points (engine, CLI, observability, experiments, benchmarks,
  tests); everything else must accept a tracer parameter so spans nest
  into one trace instead of being silently dropped.
* **LR003** — no string-literal subscripts on row variables outside
  ``repro.relational``: row layout is that package's private concern,
  other layers go through schemas and executors.
* **LR004** — module-level import layering: lower layers must not import
  upper layers (``repro.sql`` must not know about patterns or engines,
  ``repro.fd`` only depends on itself and errors, and so on).  Lazy
  imports inside functions are exempt — they are how intentional
  back-references (executor -> analysis) avoid cycles.
* **LR005** — every ``threading.Thread(...)`` construction must pass
  both ``name=`` and ``daemon=``: anonymous threads make deadlock dumps
  unreadable, and forgotten non-daemon threads hang interpreter
  shutdown.  ``repro/service/`` is exempt — it is the one layer whose
  whole job is thread lifecycle, and it names everything anyway.
* **LR006** — ``sqlite3`` may only be imported (at any nesting level)
  inside ``repro/backends/``: every other layer goes through the
  :class:`~repro.backends.base.Backend` protocol, so the RDBMS
  dependency stays swappable and the differential harness stays the
  single place where two execution paths meet.
* **LR007** — ``multiprocessing`` (and ``os.fork``) may only be used (at
  any nesting level) inside ``repro/service/pool.py``: process lifecycle
  — spawning, piping, killing, respawning — is the worker pool's whole
  job, and every other layer reaches it through
  :class:`~repro.service.pool.WorkerPool` so fork-safety reasoning stays
  in one reviewable place.

Usage::

    python tools/lint_repro.py [--root src/repro]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# file path substrings (POSIX style) where Tracer() construction is fine
TRACER_ALLOWED = (
    "repro/cli.py",
    "repro/engine.py",
    "repro/observability/",
    "repro/experiments/",
    "repro/analysis/check.py",
    # the differential harness is a pipeline entry point (`repro diff`)
    "repro/backends/differential.py",
    # the service is a pipeline entry point: one tracer per request
    "repro/service/",
)

# file path substrings where importing sqlite3 is allowed (LR006): the
# backend package owns the one RDBMS dependency
SQLITE_ALLOWED = ("repro/backends/",)

# file path substrings where importing multiprocessing / calling os.fork
# is allowed (LR007): the worker pool owns process lifecycle
MULTIPROCESSING_ALLOWED = ("repro/service/pool.py",)

# variable names treated as raw rows for LR003
ROW_NAMES = ("row", "rows", "tuple_row", "record")

# file path substrings where LR005 (named, explicit-daemon threads) is
# not enforced: the serving layer owns thread lifecycle
THREAD_RULE_EXEMPT = ("repro/service/",)

# (file substring, forbidden prefix) pairs exempt from LR004: justified
# cross-layer dependencies, each with a reason
LAYERING_EXEMPT = (
    # FD discovery profiles table *data*; the fd core stays relational-free
    ("repro/fd/discovery.py", "repro.relational"),
)

# package -> module prefixes it must NOT import at module level
LAYERING: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "repro.sql",
        (
            "repro.patterns",
            "repro.engine",
            "repro.unnormalized",
            "repro.keywords",
            "repro.orm",
            "repro.analysis",
        ),
    ),
    (
        "repro.fd",
        (
            "repro.sql",
            "repro.patterns",
            "repro.engine",
            "repro.relational",
            "repro.unnormalized",
            "repro.keywords",
            "repro.orm",
            "repro.analysis",
            "repro.observability",
        ),
    ),
    (
        "repro.observability",
        (
            "repro.sql",
            "repro.patterns",
            "repro.engine",
            "repro.relational",
            "repro.unnormalized",
            "repro.keywords",
            "repro.orm",
            "repro.fd",
            "repro.analysis",
        ),
    ),
    (
        "repro.relational",
        (
            "repro.patterns",
            "repro.engine",
            "repro.keywords",
            "repro.unnormalized",
            "repro.analysis",
        ),
    ),
    (
        "repro.analysis",
        ("repro.engine", "repro.experiments", "repro.baselines"),
    ),
)

Finding = Tuple[Path, int, str, str]


def _is_thread_constructor(func: ast.expr) -> bool:
    """True for ``Thread(...)`` and ``threading.Thread(...)`` calls."""
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "Thread"
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    )


def module_name(root: Path, path: Path) -> str:
    relative = path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def iter_module_level_imports(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """(line, imported module) for imports outside any function body."""

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: List[Tuple[int, str]] = []
            self.depth = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Import(self, node: ast.Import) -> None:
            if self.depth == 0:
                for alias in node.names:
                    self.found.append((node.lineno, alias.name))

        def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
            if self.depth == 0 and node.module:
                self.found.append((node.lineno, node.module))

    visitor = Visitor()
    visitor.visit(tree)
    return iter(visitor.found)


def lint_file(root: Path, path: Path) -> List[Finding]:
    findings: List[Finding] = []
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    posix = path.as_posix()
    module = module_name(root, path)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and not any(
            part in posix for part in SQLITE_ALLOWED
        ):
            imported_names = (
                [alias.name for alias in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
            )
            for imported in imported_names:
                if imported == "sqlite3" or imported.startswith("sqlite3."):
                    findings.append(
                        (
                            path,
                            node.lineno,
                            "LR006",
                            "sqlite3 imported outside repro/backends/; go "
                            "through the Backend protocol instead",
                        )
                    )
        if isinstance(node, (ast.Import, ast.ImportFrom)) and not any(
            part in posix for part in MULTIPROCESSING_ALLOWED
        ):
            imported_names = (
                [alias.name for alias in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
            )
            for imported in imported_names:
                if imported == "multiprocessing" or imported.startswith(
                    "multiprocessing."
                ):
                    findings.append(
                        (
                            path,
                            node.lineno,
                            "LR007",
                            "multiprocessing imported outside "
                            "repro/service/pool.py; go through WorkerPool "
                            "instead",
                        )
                    )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fork"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
            and not any(part in posix for part in MULTIPROCESSING_ALLOWED)
        ):
            findings.append(
                (
                    path,
                    node.lineno,
                    "LR007",
                    "os.fork() called outside repro/service/pool.py; go "
                    "through WorkerPool instead",
                )
            )
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                (path, node.lineno, "LR001", "bare 'except:' clause")
            )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Tracer"
            and not any(part in posix for part in TRACER_ALLOWED)
        ):
            findings.append(
                (
                    path,
                    node.lineno,
                    "LR002",
                    "Tracer() constructed outside a pipeline entry point; "
                    "accept a tracer parameter instead",
                )
            )
        if (
            isinstance(node, ast.Call)
            and _is_thread_constructor(node.func)
            and not any(part in posix for part in THREAD_RULE_EXEMPT)
        ):
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            missing = sorted({"name", "daemon"} - kwargs)
            if missing:
                findings.append(
                    (
                        path,
                        node.lineno,
                        "LR005",
                        "threading.Thread(...) without explicit "
                        + " and ".join(f"{kw}=" for kw in missing)
                        + "; name threads and decide their daemon-ness",
                    )
                )
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in ROW_NAMES
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and "repro/relational/" not in posix
        ):
            findings.append(
                (
                    path,
                    node.lineno,
                    "LR003",
                    f"string subscript on row variable "
                    f"{node.value.id}[{node.slice.value!r}] outside "
                    f"repro.relational",
                )
            )

    for package, forbidden in LAYERING:
        if not (module == package or module.startswith(package + ".")):
            continue
        for lineno, imported in iter_module_level_imports(tree):
            for prefix in forbidden:
                if imported == prefix or imported.startswith(prefix + "."):
                    if any(
                        part in posix
                        and (imported == exempt or imported.startswith(exempt + "."))
                        for part, exempt in LAYERING_EXEMPT
                    ):
                        continue
                    findings.append(
                        (
                            path,
                            lineno,
                            "LR004",
                            f"{package} must not import {imported} at "
                            f"module level",
                        )
                    )
    return findings


def lint_tree(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(root, path))
    return findings


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "src" / "repro",
        help="package directory to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    findings = lint_tree(args.root)
    for path, lineno, code, message in findings:
        print(f"{path}:{lineno}: {code} {message}")
    if not findings:
        print(f"lint_repro: clean ({args.root})")
    return min(len(findings), 1)


if __name__ == "__main__":
    sys.exit(main())
