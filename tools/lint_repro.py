#!/usr/bin/env python
"""Thin CLI shim for the repro codebase lint (LR001–LR007).

The rules now live in :mod:`repro.analysis.codebase`, where they share
one AST walk and the ``Diagnostic`` model with the concurrency pass
(:mod:`repro.analysis.concurrency`).  This file keeps the historical
entry point working unchanged::

    python tools/lint_repro.py [--root src/repro]
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.codebase import (  # noqa: E402
    LAYERING,
    LAYERING_EXEMPT,
    MULTIPROCESSING_ALLOWED,
    ROW_NAMES,
    SQLITE_ALLOWED,
    THREAD_RULE_EXEMPT,
    TRACER_ALLOWED,
    Finding,
    iter_module_level_imports,
    lint_file,
    lint_tree,
    main,
    module_name,
)

__all__ = [
    "Finding",
    "LAYERING",
    "LAYERING_EXEMPT",
    "MULTIPROCESSING_ALLOWED",
    "ROW_NAMES",
    "SQLITE_ALLOWED",
    "THREAD_RULE_EXEMPT",
    "TRACER_ALLOWED",
    "iter_module_level_imports",
    "lint_file",
    "lint_tree",
    "main",
    "module_name",
]

if __name__ == "__main__":
    sys.exit(main())
