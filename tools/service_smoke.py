#!/usr/bin/env python
"""Service smoke check: boot the HTTP service in-process and hit it.

Starts the university dataset on a free port, exercises ``/healthz``,
``/search`` (semantic + SQAK), ``/analyze`` and ``/metrics`` over real
sockets, verifies the counters reconcile, and shuts down cleanly.
Exit code 0 on success; any failure raises.  Used by the CI ``smoke``
job and runnable locally::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path
from urllib.parse import quote

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceConfig, make_server  # noqa: E402
from repro.service.cli import build_service  # noqa: E402


def fetch(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=60.0) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    service = build_service(
        ["university"], ServiceConfig(max_workers=2, cache_ttl_s=30.0)
    )
    server = make_server(service, port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = server.serve_background()
    with service:
        status, health = fetch(base, "/healthz")
        assert status == 200 and health["status"] == "ok", health
        assert health["datasets"] == ["university"], health

        status, body = fetch(base, "/search?q=" + quote("AVG Credit"))
        assert status == 200, body
        assert body["best"]["rows"] == [[4.0]], body

        # a repeat must be served from the result cache, byte-identical
        status, repeat = fetch(base, "/search?q=" + quote("AVG Credit"))
        assert status == 200 and repeat == body, repeat

        status, sqak = fetch(
            base, "/search?q=" + quote("COUNT Student GROUPBY Course")
            + "&engine=sqak"
        )
        assert status == 200 and sqak["engine"] == "sqak", sqak

        status, analysis = fetch(base, "/analyze?q=" + quote("AVG Credit"))
        assert status == 200 and analysis["diagnostics"] == [], analysis

        status, metrics = fetch(base, "/metrics")
        assert status == 200, metrics
        counters = metrics["service"]["counters"]
        assert counters["requests_submitted"] == 4, counters
        assert counters["requests_ok"] == 4, counters
        assert counters["requests_admitted"] == (
            counters.get("result_cache_hits", 0)
            + counters.get("result_cache_misses", 0)
            + counters.get("singleflight_coalesced", 0)
        ), counters
        assert counters.get("result_cache_hits", 0) >= 1, counters
        assert metrics["breakers"]["university"]["state"] == "closed", metrics

        server.shutdown()
    server.server_close()
    thread.join(5.0)
    print(f"service smoke ok ({base}): {counters}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
