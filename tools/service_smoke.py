#!/usr/bin/env python
"""Service smoke check: boot the HTTP service in-process and hit it.

Starts the university dataset on a free port, exercises ``/healthz``,
``/search`` (semantic + SQAK), ``/analyze`` and ``/metrics`` over real
sockets, verifies the counters reconcile, and shuts down cleanly.
With ``--workers N`` the service runs in pool mode (N engine-owning
worker processes behind the thread tier); the same assertions must hold
— responses are byte-identical whatever tier served them — plus the
``/workers`` endpoint and the per-worker ``/metrics`` breakdown.
Exit code 0 on success; any failure raises.  Used by the CI ``smoke``
jobs and runnable locally::

    PYTHONPATH=src python tools/service_smoke.py
    PYTHONPATH=src python tools/service_smoke.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path
from urllib.parse import quote

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceConfig, make_server  # noqa: E402
from repro.service.cli import build_service  # noqa: E402


def fetch(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=60.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0: in-process serving, the default)",
    )
    args = parser.parse_args(argv)
    service = build_service(
        ["university"],
        ServiceConfig(
            max_workers=2, cache_ttl_s=30.0, worker_processes=args.workers
        ),
    )
    server = make_server(service, port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = server.serve_background()
    with service:
        status, health = fetch(base, "/healthz")
        assert status == 200 and health["status"] == "ok", health
        assert health["datasets"] == ["university"], health
        assert health["worker_processes"] == args.workers, health
        if args.workers:
            assert health["pool"]["alive"] == args.workers, health

        status, body = fetch(base, "/search?q=" + quote("AVG Credit"))
        assert status == 200, body
        assert body["best"]["rows"] == [[4.0]], body

        # a repeat must be served from the result cache, byte-identical
        status, repeat = fetch(base, "/search?q=" + quote("AVG Credit"))
        assert status == 200 and repeat == body, repeat

        status, sqak = fetch(
            base, "/search?q=" + quote("COUNT Student GROUPBY Course")
            + "&engine=sqak"
        )
        assert status == 200 and sqak["engine"] == "sqak", sqak

        status, analysis = fetch(base, "/analyze?q=" + quote("AVG Credit"))
        assert status == 200 and analysis["diagnostics"] == [], analysis

        status, metrics = fetch(base, "/metrics")
        assert status == 200, metrics
        counters = metrics["service"]["counters"]
        assert counters["requests_submitted"] == 4, counters
        assert counters["requests_ok"] == 4, counters
        assert counters["requests_admitted"] == (
            counters.get("result_cache_hits", 0)
            + counters.get("result_cache_misses", 0)
            + counters.get("singleflight_coalesced", 0)
        ), counters
        assert counters.get("result_cache_hits", 0) >= 1, counters
        assert metrics["breakers"]["university"]["state"] == "closed", metrics

        status, workers = fetch(base, "/workers")
        if args.workers:
            # the pool served every cache miss; the per-worker request
            # counts must sum to exactly the front end's miss count
            assert status == 200, workers
            per_worker = workers["workers"]
            assert len(per_worker) == args.workers, per_worker
            served = sum(
                entry["counters"]["requests"] for entry in per_worker.values()
            )
            assert served == counters.get("result_cache_misses", 0), workers
            assert metrics["workers"]["pool"]["dispatches"] == served, metrics
        else:
            assert status == 404, workers

        server.shutdown()
    server.server_close()
    thread.join(5.0)
    mode = f"{args.workers} worker processes" if args.workers else "in-process"
    print(f"service smoke ok ({base}, {mode}): {counters}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
